//! A small datalog-style parser for conjunctive queries.
//!
//! The grammar is the one used throughout the paper:
//!
//! ```text
//! query     ::=  head ":-" body
//! head      ::=  NAME "(" varlist? ")"
//! body      ::=  atom ("," atom | "∧" atom | "&&" atom)*
//! atom      ::=  NAME "(" varlist ")"
//! varlist   ::=  VAR ("," VAR)*
//! ```
//!
//! so the 4-cycle query of Eq. (2) is written
//! `Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)` and its Boolean version just
//! has an empty head variable list, `Q() :- …`.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::var::{Var, VarSet, MAX_VARS};

/// Error produced when parsing a query fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

/// Parses a predicate application `Name(v1,…,vk)`, returning the name and
/// the raw variable tokens.  `allow_empty` permits `Name()`.
fn parse_application(text: &str, allow_empty: bool) -> Result<(String, Vec<String>), ParseError> {
    let text = text.trim();
    let open = match text.find('(') {
        Some(i) => i,
        None => return err(format!("expected `(` in `{text}`")),
    };
    if !text.ends_with(')') {
        return err(format!("expected `)` at the end of `{text}`"));
    }
    let Some(name) = text.get(..open).map(str::trim) else {
        return err(format!("malformed atom `{text}`"));
    };
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return err(format!("invalid predicate name in `{text}`"));
    }
    let Some(inner) = text.get(open + 1..text.len() - 1).map(str::trim) else {
        return err(format!("malformed atom `{text}`"));
    };
    if inner.is_empty() {
        if allow_empty {
            return Ok((name.to_string(), Vec::new()));
        }
        return err(format!("atom `{text}` has no variables"));
    }
    let vars: Vec<String> = inner.split(',').map(|s| s.trim().to_string()).collect();
    for v in &vars {
        if v.is_empty() || !v.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '\'') {
            return err(format!("invalid variable name `{v}` in `{text}`"));
        }
    }
    Ok((name.to_string(), vars))
}

/// Parses a conjunctive query from its textual form.
///
/// # Examples
///
/// ```
/// use panda_query::parse_query;
///
/// let q = parse_query("Qbool() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
/// assert!(q.is_boolean());
///
/// let full = parse_query("Qfull(X,Y,Z) :- A(X,Y) ∧ B(Y,Z)").unwrap();
/// assert!(full.is_full());
/// ```
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (head_text, body_text) = match text.split_once(":-") {
        Some(parts) => parts,
        None => return err("missing `:-` separator"),
    };
    let (name, head_vars) = parse_application(head_text, /*allow_empty=*/ true)?;

    // Split the body on commas that are *outside* parentheses.
    let body_text = body_text.replace('∧', ",").replace("&&", ",");
    let mut atoms_text: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body_text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                atoms_text.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        atoms_text.push(current.trim().to_string());
    }
    atoms_text.retain(|a| !a.is_empty());
    if atoms_text.is_empty() {
        return err("query body has no atoms");
    }

    let mut var_names: Vec<String> = Vec::new();
    let var_of = |name: &str, var_names: &mut Vec<String>| -> Result<Var, ParseError> {
        if let Some(i) = var_names.iter().position(|n| n == name) {
            return Ok(Var(i as u32));
        }
        if var_names.len() >= MAX_VARS {
            return err(format!("too many variables (limit {MAX_VARS})"));
        }
        var_names.push(name.to_string());
        Ok(Var((var_names.len() - 1) as u32))
    };

    let mut atoms = Vec::with_capacity(atoms_text.len());
    for atom_text in &atoms_text {
        let (rel, vars) = parse_application(atom_text, /*allow_empty=*/ false)?;
        let mut atom_vars = Vec::with_capacity(vars.len());
        for v in &vars {
            atom_vars.push(var_of(v, &mut var_names)?);
        }
        atoms.push(Atom::new(rel, atom_vars));
    }

    // Head variables must occur in the body (safe queries).
    let mut free = VarSet::EMPTY;
    for v in &head_vars {
        match var_names.iter().position(|n| n == v) {
            Some(i) => free = free.with(Var(i as u32)),
            None => return err(format!("head variable `{v}` does not occur in the body")),
        }
    }

    Ok(ConjunctiveQuery::build(name, var_names, free, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.atoms().len(), 4);
        assert_eq!(q.var_names(), &["X", "Y", "Z", "W"]);
        assert_eq!(q.free_vars().to_vec(), vec![Var(0), Var(1)]);
        assert_eq!(q.to_string(), "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
    }

    #[test]
    fn parses_boolean_and_full_queries() {
        let b = parse_query("Q() :- R(X,Y), S(Y,X)").unwrap();
        assert!(b.is_boolean());
        let f = parse_query("Q(X,Y) :- R(X,Y)").unwrap();
        assert!(f.is_full());
    }

    #[test]
    fn accepts_unicode_and_ascii_conjunctions() {
        let q1 = parse_query("Q(X) :- R(X,Y) ∧ S(Y,Z)").unwrap();
        let q2 = parse_query("Q(X) :- R(X,Y) && S(Y,Z)").unwrap();
        assert_eq!(q1.atoms().len(), 2);
        assert_eq!(q2.atoms().len(), 2);
    }

    #[test]
    fn higher_arity_atoms() {
        let q = parse_query("Q(X,Y) :- A11(X,Y,Z), A12(Z,W,X)").unwrap();
        assert_eq!(q.atoms()[0].arity(), 3);
        assert_eq!(q.atoms()[1].vars, vec![Var(2), Var(3), Var(0)]);
    }

    #[test]
    fn self_joins_parse() {
        let q = parse_query("Tri() :- E(A,B), E(B,C), E(A,C)").unwrap();
        assert!(q.has_self_join());
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("Q(X,Y)").is_err());
        assert!(parse_query("Q(X) :- ").is_err());
        assert!(parse_query("Q(X) :- R()").is_err());
        assert!(parse_query("Q(A) :- R(X,Y)").is_err());
        assert!(parse_query(":- R(X)").is_err());
        assert!(parse_query("Q(X) :- R(X").is_err());
        assert!(parse_query("Q(X) :- R(X,)").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let q = parse_query("  Q ( X , Y )  :-   R ( X , Y ) ,  S(Y , Z)  ").unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.free_vars().len(), 2);
    }
}
