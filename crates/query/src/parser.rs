//! A small datalog-style parser for conjunctive queries.
//!
//! The grammar is the one used throughout the paper:
//!
//! ```text
//! query     ::=  head ":-" body
//! head      ::=  NAME "(" varlist? ")"
//! body      ::=  atom ("," atom | "∧" atom | "&&" atom)*
//! atom      ::=  NAME "(" varlist ")"
//! varlist   ::=  VAR ("," VAR)*
//! ```
//!
//! so the 4-cycle query of Eq. (2) is written
//! `Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)` and its Boolean version just
//! has an empty head variable list, `Q() :- …`.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::var::{Var, VarSet, MAX_VARS};

/// Error produced when parsing a query fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

/// Parses a predicate application `Name(v1,…,vk)`, returning the name and
/// the raw variable tokens.  `allow_empty` permits `Name()`.
fn parse_application(text: &str, allow_empty: bool) -> Result<(String, Vec<String>), ParseError> {
    let text = text.trim();
    let open = match text.find('(') {
        Some(i) => i,
        None => return err(format!("expected `(` in `{text}`")),
    };
    if !text.ends_with(')') {
        return err(format!("expected `)` at the end of `{text}`"));
    }
    let Some(name) = text.get(..open).map(str::trim) else {
        return err(format!("malformed atom `{text}`"));
    };
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return err(format!("invalid predicate name in `{text}`"));
    }
    let Some(inner) = text.get(open + 1..text.len() - 1).map(str::trim) else {
        return err(format!("malformed atom `{text}`"));
    };
    if inner.is_empty() {
        if allow_empty {
            return Ok((name.to_string(), Vec::new()));
        }
        return err(format!("atom `{text}` has no variables"));
    }
    let vars: Vec<String> = inner.split(',').map(|s| s.trim().to_string()).collect();
    for v in &vars {
        if v.is_empty() || !v.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '\'') {
            return err(format!("invalid variable name `{v}` in `{text}`"));
        }
    }
    Ok((name.to_string(), vars))
}

/// Parses a conjunctive query from its textual form.
///
/// # Examples
///
/// ```
/// use panda_query::parse_query;
///
/// let q = parse_query("Qbool() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
/// assert!(q.is_boolean());
///
/// let full = parse_query("Qfull(X,Y,Z) :- A(X,Y) ∧ B(Y,Z)").unwrap();
/// assert!(full.is_full());
/// ```
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (head_text, body_text) = match text.split_once(":-") {
        Some(parts) => parts,
        None => return err("missing `:-` separator"),
    };
    let (name, head_vars) = parse_application(head_text, /*allow_empty=*/ true)?;

    // Split the body on commas that are *outside* parentheses.
    let body_text = body_text.replace('∧', ",").replace("&&", ",");
    let mut atoms_text: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body_text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                atoms_text.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        atoms_text.push(current.trim().to_string());
    }
    atoms_text.retain(|a| !a.is_empty());
    if atoms_text.is_empty() {
        return err("query body has no atoms");
    }

    let mut var_names: Vec<String> = Vec::new();
    let var_of = |name: &str, var_names: &mut Vec<String>| -> Result<Var, ParseError> {
        if let Some(i) = var_names.iter().position(|n| n == name) {
            return Ok(Var(i as u32));
        }
        if var_names.len() >= MAX_VARS {
            return err(format!("too many variables (limit {MAX_VARS})"));
        }
        var_names.push(name.to_string());
        Ok(Var((var_names.len() - 1) as u32))
    };

    let mut atoms = Vec::with_capacity(atoms_text.len());
    for atom_text in &atoms_text {
        let (rel, vars) = parse_application(atom_text, /*allow_empty=*/ false)?;
        let mut atom_vars = Vec::with_capacity(vars.len());
        for v in &vars {
            atom_vars.push(var_of(v, &mut var_names)?);
        }
        atoms.push(Atom::new(rel, atom_vars));
    }

    // Head variables must occur in the body (safe queries).
    let mut free = VarSet::EMPTY;
    for v in &head_vars {
        match var_names.iter().position(|n| n == v) {
            Some(i) => free = free.with(Var(i as u32)),
            None => return err(format!("head variable `{v}` does not occur in the body")),
        }
    }

    Ok(ConjunctiveQuery::build(name, var_names, free, atoms))
}

/// The outcome of [`parse_statement`] on a (possibly partial) buffer.
///
/// `consumed` is always the byte offset *past the statement's terminator*,
/// so callers resume with `&buffer[consumed..]` — after a [`Parsed::Malformed`]
/// statement too, which is what lets a line-oriented session survive a bad
/// request and parse the next one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A complete, well-formed statement was parsed.
    Statement {
        /// The parsed query.
        query: ConjunctiveQuery,
        /// Bytes consumed from the buffer, including the terminator.
        consumed: usize,
    },
    /// A complete but malformed statement: the buffer up to the terminator
    /// does not parse.  `consumed` still advances past the terminator so
    /// the caller can report the error and resume with the next statement.
    Malformed {
        /// Why the statement did not parse.
        error: ParseError,
        /// Bytes consumed from the buffer, including the terminator.
        consumed: usize,
    },
    /// No statement terminator has arrived yet; feed more input and retry
    /// with the same (extended) buffer.
    Incomplete,
}

/// Parses the first complete statement out of a streaming buffer.
///
/// A statement is terminated by a newline or a `;`.  Leading whitespace
/// and *empty* statements (terminators with nothing before them) are
/// skipped — their bytes count toward `consumed` — so blank lines and
/// stray `;;` are free.  Without a terminator the buffer is
/// [`Parsed::Incomplete`]: nothing is consumed, and the caller retries
/// once more bytes arrive.  This is the resumable entry point the serving
/// layer uses; [`parse_query`] remains the whole-string form, and on any
/// single terminated statement the two agree exactly.
///
/// ```
/// use panda_query::{parse_statement, Parsed};
///
/// // A terminator completes the statement and reports the bytes consumed.
/// let buffer = "Q(X,Y) :- R(X,Y), S(Y,Z)\nQ2(A) :- T(A,B)\n";
/// let Parsed::Statement { query, consumed } = parse_statement(buffer) else {
///     panic!("complete statement")
/// };
/// assert_eq!(query.to_string(), "Q(X,Y) :- R(X,Y), S(Y,Z)");
/// assert_eq!(&buffer[consumed..], "Q2(A) :- T(A,B)\n");
///
/// // Partial input is not an error: it is a request for more bytes.
/// assert_eq!(parse_statement("Q(X,Y) :- R(X,"), Parsed::Incomplete);
/// ```
#[must_use]
pub fn parse_statement(buffer: &str) -> Parsed {
    let mut offset = 0;
    loop {
        // panda-lint: allow(P1) -- `offset` only ever advances past a
        // one-byte ASCII terminator found below, so it stays in range and
        // on a char boundary
        let rest = &buffer[offset..];
        let Some(i) = rest.find(['\n', ';']) else {
            return Parsed::Incomplete;
        };
        // panda-lint: allow(P1) -- `i` comes from `find` on `rest`, so it
        // is a valid char-boundary index into `rest`
        let segment = &rest[..i];
        let consumed = offset + i + 1;
        if segment.trim().is_empty() {
            offset = consumed;
            continue;
        }
        return match parse_query(segment) {
            Ok(query) => Parsed::Statement { query, consumed },
            Err(error) => Parsed::Malformed { error, consumed },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.atoms().len(), 4);
        assert_eq!(q.var_names(), &["X", "Y", "Z", "W"]);
        assert_eq!(q.free_vars().to_vec(), vec![Var(0), Var(1)]);
        assert_eq!(q.to_string(), "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
    }

    #[test]
    fn parses_boolean_and_full_queries() {
        let b = parse_query("Q() :- R(X,Y), S(Y,X)").unwrap();
        assert!(b.is_boolean());
        let f = parse_query("Q(X,Y) :- R(X,Y)").unwrap();
        assert!(f.is_full());
    }

    #[test]
    fn accepts_unicode_and_ascii_conjunctions() {
        let q1 = parse_query("Q(X) :- R(X,Y) ∧ S(Y,Z)").unwrap();
        let q2 = parse_query("Q(X) :- R(X,Y) && S(Y,Z)").unwrap();
        assert_eq!(q1.atoms().len(), 2);
        assert_eq!(q2.atoms().len(), 2);
    }

    #[test]
    fn higher_arity_atoms() {
        let q = parse_query("Q(X,Y) :- A11(X,Y,Z), A12(Z,W,X)").unwrap();
        assert_eq!(q.atoms()[0].arity(), 3);
        assert_eq!(q.atoms()[1].vars, vec![Var(2), Var(3), Var(0)]);
    }

    #[test]
    fn self_joins_parse() {
        let q = parse_query("Tri() :- E(A,B), E(B,C), E(A,C)").unwrap();
        assert!(q.has_self_join());
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("Q(X,Y)").is_err());
        assert!(parse_query("Q(X) :- ").is_err());
        assert!(parse_query("Q(X) :- R()").is_err());
        assert!(parse_query("Q(A) :- R(X,Y)").is_err());
        assert!(parse_query(":- R(X)").is_err());
        assert!(parse_query("Q(X) :- R(X").is_err());
        assert!(parse_query("Q(X) :- R(X,)").is_err());
    }

    #[test]
    fn statements_resume_across_chunks() {
        // Feeding the same text in arbitrary chunks converges on the same
        // parse: Incomplete until the terminator arrives, then Statement.
        let text = "Q(X,Y) :- R(X,Y), S(Y,Z)\n";
        for split in 0..text.len() - 1 {
            assert_eq!(parse_statement(&text[..split]), Parsed::Incomplete, "split {split}");
        }
        let Parsed::Statement { query, consumed } = parse_statement(text) else {
            panic!("terminated statement must parse");
        };
        assert_eq!(consumed, text.len());
        assert_eq!(query, parse_query(text.trim_end()).unwrap());
    }

    #[test]
    fn semicolons_terminate_and_blank_statements_are_skipped() {
        let buffer = " \n ; Q() :- R(A,B); rest";
        let Parsed::Statement { query, consumed } = parse_statement(buffer) else {
            panic!("semicolon-terminated statement must parse");
        };
        assert!(query.is_boolean());
        assert_eq!(&buffer[consumed..], " rest");
    }

    #[test]
    fn malformed_statements_still_consume_through_the_terminator() {
        // Trailing garbage after a well-formed prefix is a parse error for
        // the whole statement, but the buffer still advances so the next
        // statement is reachable.
        let buffer = "Q(A) :- R(A,B) garbage\nQ2(A) :- R(A,B)\n";
        let Parsed::Malformed { error, consumed } = parse_statement(buffer) else {
            panic!("trailing garbage must be malformed");
        };
        assert!(!error.message.is_empty());
        let Parsed::Statement { query, .. } = parse_statement(&buffer[consumed..]) else {
            panic!("parsing must resume after a malformed statement");
        };
        assert_eq!(query.to_string(), "Q2(A) :- R(A,B)");
    }

    #[test]
    fn incomplete_never_consumes_and_terminator_only_buffers_stay_incomplete() {
        assert_eq!(parse_statement(""), Parsed::Incomplete);
        assert_eq!(parse_statement("   "), Parsed::Incomplete);
        assert_eq!(parse_statement("\n\n ; \n"), Parsed::Incomplete);
        assert_eq!(parse_statement("Q(X) :- R(X,Y)"), Parsed::Incomplete);
    }

    #[test]
    fn parse_statement_agrees_with_parse_query_on_single_statements() {
        for text in [
            "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)",
            "Tri() :- E(A,B), E(B,C), E(A,C)",
            "Q(X,Y)",
            ":- R(X)",
            "Q(X) :- R(X",
        ] {
            let direct = parse_query(text);
            match parse_statement(&format!("{text}\n")) {
                Parsed::Statement { query, consumed } => {
                    assert_eq!(Ok(query), direct);
                    assert_eq!(consumed, text.len() + 1);
                }
                Parsed::Malformed { error, consumed } => {
                    assert_eq!(Err(error), direct);
                    assert_eq!(consumed, text.len() + 1);
                }
                Parsed::Incomplete => panic!("terminated input cannot be incomplete: {text}"),
            }
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let q = parse_query("  Q ( X , Y )  :-   R ( X , Y ) ,  S(Y , Z)  ").unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.free_vars().len(), 2);
    }
}
