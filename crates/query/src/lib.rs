//! Query representation for `panda-rs`.
//!
//! This crate contains the purely *syntactic* side of the PANDA framework
//! (Sections 3.1 and 3.4 of the paper):
//!
//! * [`Var`] and [`VarSet`] — query variables and bitset variable sets,
//! * [`Atom`] and [`ConjunctiveQuery`] — conjunctive queries with free
//!   variables, plus a small datalog-style [`parser`],
//! * [`Hypergraph`] — the query hypergraph, GYO reduction, acyclicity and
//!   join-tree construction,
//! * [`TreeDecomposition`] — tree decompositions, validity checking,
//!   free-connexity, and enumeration of the non-redundant free-connex TDs
//!   of a query via elimination orders (the set `TD(Q)` of the paper),
//! * [`DisjunctiveRule`] and [`BagSelector`] — disjunctive datalog rules
//!   (Section 5.1) and the bag selectors `BS(Q)` used to rewrite an
//!   adaptive query plan into a conjunction of DDRs (Eq. 32–34).
//!
//! Everything here is independent of data; the relational substrate lives
//! in `panda-relation` and the two are tied together by `panda-core`.
//! `docs/NOTATION.md` at the workspace root maps the paper's notation
//! onto these types.

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cq;
pub mod ddr;
pub mod hypergraph;
pub mod parser;
pub mod td;
pub mod var;

pub use cq::{Atom, ConjunctiveQuery};
pub use ddr::{BagSelector, DisjunctiveRule};
pub use hypergraph::{Hypergraph, JoinTree};
pub use parser::{parse_query, parse_statement, ParseError, Parsed};
pub use td::TreeDecomposition;
pub use var::{Var, VarSet};
