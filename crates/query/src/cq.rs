//! Conjunctive queries and atoms.

use std::fmt;

use crate::var::{Var, VarSet};

/// One atom `R(X₁,…,X_k)` of a conjunctive query: a relation symbol plus an
/// ordered list of variables.  The *order* matters for binding the atom to
/// a [`panda_relation::Relation`] instance (column `i` ↔ `vars[i]`); the
/// unordered [`Atom::var_set`] is what the information-theoretic machinery
/// uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation symbol.
    pub relation: String,
    /// The variables, in column order.
    pub vars: Vec<Var>,
}

impl Atom {
    /// Creates an atom.
    #[must_use]
    pub fn new(relation: impl Into<String>, vars: Vec<Var>) -> Self {
        Atom { relation: relation.into(), vars }
    }

    /// The atom's variables as a set.
    #[must_use]
    pub fn var_set(&self) -> VarSet {
        self.vars.iter().copied().collect()
    }

    /// The arity of the atom.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The column positions (within this atom) of the given variables, in
    /// the order the variables appear in `vars_wanted`.  Returns `None` for
    /// variables not present.
    #[must_use]
    pub fn positions_of(&self, vars_wanted: &[Var]) -> Vec<Option<usize>> {
        vars_wanted.iter().map(|v| self.vars.iter().position(|w| w == v)).collect()
    }

    /// The column position of a single variable, if present.
    #[must_use]
    pub fn position_of(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|w| *w == v)
    }
}

/// A conjunctive query
/// `Q(F) :- R₁(X₁) ∧ … ∧ R_m(X_m)` (Eq. 3 of the paper).
///
/// Construct queries either programmatically via [`ConjunctiveQuery::build`]
/// or from text via [`crate::parse_query`]:
///
/// ```
/// use panda_query::parse_query;
///
/// let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
/// assert_eq!(q.num_vars(), 4);
/// assert_eq!(q.atoms().len(), 4);
/// assert!(!q.is_full());
/// assert!(!q.is_boolean());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    name: String,
    var_names: Vec<String>,
    free: VarSet,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a query from its parts.
    ///
    /// # Panics
    ///
    /// Panics if an atom or the free set references a variable index with no
    /// name, or if more than [`crate::var::MAX_VARS`] variables are used.
    #[must_use]
    pub fn build(
        name: impl Into<String>,
        var_names: Vec<String>,
        free: VarSet,
        atoms: Vec<Atom>,
    ) -> Self {
        assert!(
            var_names.len() <= crate::var::MAX_VARS,
            "queries with more than {} variables are not supported",
            crate::var::MAX_VARS
        );
        let declared: VarSet = (0..var_names.len() as u32).map(Var).collect();
        assert!(free.is_subset_of(declared), "free variables must be declared in var_names");
        for atom in &atoms {
            assert!(
                atom.var_set().is_subset_of(declared),
                "atom {} uses undeclared variables",
                atom.relation
            );
        }
        ConjunctiveQuery { name: name.into(), var_names, free, atoms }
    }

    /// The query's name (head predicate).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of variables in the query.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables of the query as a set (the paper's `V`).
    #[must_use]
    pub fn all_vars(&self) -> VarSet {
        (0..self.var_names.len() as u32).map(Var).collect()
    }

    /// The free variables `F ⊆ V`.
    #[must_use]
    pub fn free_vars(&self) -> VarSet {
        self.free
    }

    /// The existentially-quantified variables `V ∖ F`.
    #[must_use]
    pub fn existential_vars(&self) -> VarSet {
        self.all_vars().difference(self.free)
    }

    /// The atoms of the body.
    #[must_use]
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The variable names, indexed by [`Var`].
    #[must_use]
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The name of one variable.
    #[must_use]
    pub fn var_name(&self, v: Var) -> &str {
        // panda-lint: allow(P1) -- `Var`s are minted by this query's
        // interner, so the index is in range for any var the caller can
        // legitimately hold.
        &self.var_names[v.index()]
    }

    /// Looks a variable up by name.
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names.iter().position(|n| n == name).map(|i| Var(i as u32))
    }

    /// `true` iff the query is *Boolean* (no free variables).
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// `true` iff the query is *full* (all variables free).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.free == self.all_vars()
    }

    /// Returns a copy of this query with a different free-variable set —
    /// e.g. the *full* version used when materialising a bag of a tree
    /// decomposition (Eq. 13 of the paper).
    #[must_use]
    pub fn with_free(&self, free: VarSet) -> Self {
        assert!(free.is_subset_of(self.all_vars()), "free set must be a subset of the variables");
        ConjunctiveQuery {
            name: self.name.clone(),
            var_names: self.var_names.clone(),
            free,
            atoms: self.atoms.clone(),
        }
    }

    /// Returns the hyperedges of the query hypergraph: one variable set per
    /// atom.
    #[must_use]
    pub fn edges(&self) -> Vec<VarSet> {
        self.atoms.iter().map(Atom::var_set).collect()
    }

    /// `true` iff the query has a self-join (two atoms over the same
    /// relation symbol).
    #[must_use]
    pub fn has_self_join(&self) -> bool {
        for (i, a) in self.atoms.iter().enumerate() {
            // panda-lint: allow(P1) -- `i` comes from enumerate over the
            // same vector, so `i + 1` is at most its length.
            for b in &self.atoms[i + 1..] {
                if a.relation == b.relation {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let free_names: Vec<&str> = self.free.iter().map(|v| self.var_name(v)).collect();
        write!(f, "{}({}) :- ", self.name, free_names.join(","))?;
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a.vars.iter().map(|v| self.var_name(*v)).collect();
                format!("{}({})", a.relation, vars.join(","))
            })
            .collect();
        write!(f, "{}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_cycle() -> ConjunctiveQuery {
        let names = vec!["X".into(), "Y".into(), "Z".into(), "W".into()];
        let (x, y, z, w) = (Var(0), Var(1), Var(2), Var(3));
        ConjunctiveQuery::build(
            "Q",
            names,
            VarSet::from_iter([x, y]),
            vec![
                Atom::new("R", vec![x, y]),
                Atom::new("S", vec![y, z]),
                Atom::new("T", vec![z, w]),
                Atom::new("U", vec![w, x]),
            ],
        )
    }

    #[test]
    fn accessors() {
        let q = four_cycle();
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.all_vars().len(), 4);
        assert_eq!(q.free_vars().len(), 2);
        assert_eq!(q.existential_vars().len(), 2);
        assert_eq!(q.atoms().len(), 4);
        assert!(!q.is_boolean());
        assert!(!q.is_full());
        assert!(!q.has_self_join());
        assert_eq!(q.var_by_name("Z"), Some(Var(2)));
        assert_eq!(q.var_by_name("Q"), None);
        assert_eq!(q.var_name(Var(3)), "W");
    }

    #[test]
    fn with_free_changes_only_the_head() {
        let q = four_cycle();
        let full = q.with_free(q.all_vars());
        assert!(full.is_full());
        assert_eq!(full.atoms(), q.atoms());
        let boolean = q.with_free(VarSet::EMPTY);
        assert!(boolean.is_boolean());
    }

    #[test]
    fn atom_positions() {
        let q = four_cycle();
        let s = &q.atoms()[1]; // S(Y, Z)
        assert_eq!(s.position_of(Var(1)), Some(0));
        assert_eq!(s.position_of(Var(2)), Some(1));
        assert_eq!(s.position_of(Var(0)), None);
        assert_eq!(s.positions_of(&[Var(2), Var(0)]), vec![Some(1), None]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.var_set(), VarSet::from_iter([Var(1), Var(2)]));
    }

    #[test]
    fn display_is_readable() {
        let q = four_cycle();
        assert_eq!(q.to_string(), "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
    }

    #[test]
    fn self_join_detection() {
        let names = vec!["X".into(), "Y".into(), "Z".into()];
        let q = ConjunctiveQuery::build(
            "Q",
            names,
            VarSet::EMPTY,
            vec![Atom::new("E", vec![Var(0), Var(1)]), Atom::new("E", vec![Var(1), Var(2)])],
        );
        assert!(q.has_self_join());
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_variable_panics() {
        let _ = ConjunctiveQuery::build(
            "Q",
            vec!["X".into()],
            VarSet::EMPTY,
            vec![Atom::new("R", vec![Var(0), Var(1)])],
        );
    }

    #[test]
    #[should_panic(expected = "free variables")]
    fn free_not_declared_panics() {
        let _ = ConjunctiveQuery::build(
            "Q",
            vec!["X".into()],
            VarSet::singleton(Var(3)),
            vec![Atom::new("R", vec![Var(0)])],
        );
    }
}
