//! Variables and bitset variable sets.

use std::fmt;

/// A query variable, identified by a small index into the query's variable
/// table (see [`crate::ConjunctiveQuery::var_name`] for the human-readable
/// name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A set of query variables, stored as a 32-bit bitset.
///
/// Queries with more than 32 variables are rejected at construction time —
/// far beyond anything considered in the paper (whose examples have 4–6
/// variables), and well beyond the point where the `2^n`-variable
/// polymatroid LPs stop being practical anyway.
///
/// # Examples
///
/// ```
/// use panda_query::{Var, VarSet};
///
/// let xy = VarSet::from_iter([Var(0), Var(1)]);
/// let yz = VarSet::from_iter([Var(1), Var(2)]);
/// assert_eq!(xy.union(yz).len(), 3);
/// assert_eq!(xy.intersect(yz), VarSet::singleton(Var(1)));
/// assert!(xy.intersect(yz).is_subset_of(xy));
/// assert_eq!(xy.difference(yz), VarSet::singleton(Var(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarSet(pub u32);

/// Maximum number of distinct variables supported by [`VarSet`].
pub const MAX_VARS: usize = 32;

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// A singleton set.
    #[must_use]
    pub fn singleton(v: Var) -> Self {
        assert!(
            (v.0 as usize) < MAX_VARS,
            "variable index {} exceeds the {MAX_VARS}-variable limit",
            v.0
        );
        VarSet(1 << v.0)
    }

    /// Builds a set from raw bits (useful for iterating over all subsets).
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        VarSet(bits)
    }

    /// The raw bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Number of variables in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(self, v: Var) -> bool {
        self.0 & (1 << v.0) != 0
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub const fn difference(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Subset test.
    #[must_use]
    pub const fn is_subset_of(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Superset test.
    #[must_use]
    pub const fn is_superset_of(self, other: VarSet) -> bool {
        other.is_subset_of(self)
    }

    /// Disjointness test.
    #[must_use]
    pub const fn is_disjoint_from(self, other: VarSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Inserts a variable, returning the new set.
    #[must_use]
    pub fn with(self, v: Var) -> VarSet {
        self.union(VarSet::singleton(v))
    }

    /// Removes a variable, returning the new set.
    #[must_use]
    pub fn without(self, v: Var) -> VarSet {
        self.difference(VarSet::singleton(v))
    }

    /// Iterates over the member variables in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = Var> {
        (0..MAX_VARS as u32).filter_map(
            move |i| {
                if self.0 & (1 << i) != 0 {
                    Some(Var(i))
                } else {
                    None
                }
            },
        )
    }

    /// The members as a vector (increasing index order).
    #[must_use]
    pub fn to_vec(self) -> Vec<Var> {
        self.iter().collect()
    }

    /// Formats the set using the provided variable names, e.g. `{X,Y,Z}`.
    #[must_use]
    pub fn display_with(self, names: &[String]) -> String {
        let parts: Vec<&str> =
            self.iter().map(|v| names.get(v.index()).map_or("?", String::as_str)).collect();
        format!("{{{}}}", parts.join(","))
    }

    /// Enumerates every subset of `universe` (including the empty set and
    /// `universe` itself).  The number of subsets is `2^|universe|`.
    pub fn subsets_of(universe: VarSet) -> impl Iterator<Item = VarSet> {
        // Standard subset-enumeration trick over the bits of `universe`.
        let bits = universe.0;
        let mut current: u32 = 0;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let result = VarSet(current);
            if current == bits {
                done = true;
            } else {
                current = (current.wrapping_sub(bits)) & bits;
            }
            Some(result)
        })
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        let mut s = VarSet::EMPTY;
        for v in iter {
            s = s.with(v);
        }
        s
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_set_operations() {
        let a = VarSet::from_iter([Var(0), Var(2), Var(4)]);
        let b = VarSet::from_iter([Var(2), Var(3)]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(Var(2)));
        assert!(!a.contains(Var(1)));
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), VarSet::singleton(Var(2)));
        assert_eq!(a.difference(b), VarSet::from_iter([Var(0), Var(4)]));
        assert!(VarSet::EMPTY.is_subset_of(a));
        assert!(a.intersect(b).is_subset_of(a));
        assert!(a.is_superset_of(VarSet::singleton(Var(4))));
        assert!(a.difference(b).is_disjoint_from(b));
    }

    #[test]
    fn with_without_round_trip() {
        let s = VarSet::EMPTY.with(Var(5)).with(Var(7));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(Var(5)), VarSet::singleton(Var(7)));
        assert_eq!(s.without(Var(9)), s);
    }

    #[test]
    fn iter_is_sorted() {
        let s = VarSet::from_iter([Var(7), Var(1), Var(3)]);
        let v: Vec<u32> = s.iter().map(|v| v.0).collect();
        assert_eq!(v, vec![1, 3, 7]);
        assert_eq!(s.to_vec().len(), 3);
    }

    #[test]
    fn display_with_names() {
        let names = vec!["X".to_string(), "Y".to_string(), "Z".to_string()];
        let s = VarSet::from_iter([Var(0), Var(2)]);
        assert_eq!(s.display_with(&names), "{X,Z}");
    }

    #[test]
    fn subset_enumeration_counts() {
        let u = VarSet::from_iter([Var(0), Var(1), Var(2)]);
        let subsets: Vec<VarSet> = VarSet::subsets_of(u).collect();
        assert_eq!(subsets.len(), 8);
        assert!(subsets.contains(&VarSet::EMPTY));
        assert!(subsets.contains(&u));
        // every enumerated set is a subset of the universe
        assert!(subsets.iter().all(|s| s.is_subset_of(u)));
        // all distinct
        let mut bits: Vec<u32> = subsets.iter().map(|s| s.0).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 8);
    }

    #[test]
    fn subset_enumeration_of_empty_set() {
        let subsets: Vec<VarSet> = VarSet::subsets_of(VarSet::EMPTY).collect();
        assert_eq!(subsets, vec![VarSet::EMPTY]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn variable_over_limit_panics() {
        let _ = VarSet::singleton(Var(32));
    }

    proptest! {
        #[test]
        fn prop_union_intersection_laws(a in 0u32..1024, b in 0u32..1024) {
            let sa = VarSet::from_bits(a);
            let sb = VarSet::from_bits(b);
            prop_assert_eq!(sa.union(sb), sb.union(sa));
            prop_assert_eq!(sa.intersect(sb), sb.intersect(sa));
            prop_assert_eq!(sa.union(sb).intersect(sa), sa);
            prop_assert_eq!(sa.difference(sb).union(sa.intersect(sb)), sa);
            prop_assert_eq!(sa.union(sb).len() + sa.intersect(sb).len(), sa.len() + sb.len());
        }

        #[test]
        fn prop_subsets_count_is_power_of_two(bits in 0u32..256) {
            let u = VarSet::from_bits(bits);
            let count = VarSet::subsets_of(u).count();
            prop_assert_eq!(count, 1usize << u.len());
        }
    }
}
