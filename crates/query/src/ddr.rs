//! Disjunctive datalog rules and bag selectors (Section 5.1).
//!
//! An adaptive query plan commits to a *set* of tree decompositions and
//! asks, for every tuple satisfying the body, that at least one TD's bags
//! cover it (rule 28 of the paper).  Rewriting the disjunction-of-
//! conjunctions head into a conjunction-of-disjunctions (Eq. 32) yields one
//! *disjunctive datalog rule* (DDR) per *bag selector* — a choice of one
//! bag from every TD (Eq. 34).  Each DDR is costed by the polymatroid bound
//! of Theorem 5.1, and the maximum over bag selectors is the submodular
//! width.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::td::TreeDecomposition;
use crate::var::VarSet;

/// A bag selector: one bag chosen from each tree decomposition of the
/// adaptive plan.  Duplicate bags are kept only once (choosing the same bag
/// from two TDs yields the same disjunct twice).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BagSelector {
    bags: Vec<VarSet>,
}

impl BagSelector {
    /// Creates a selector from the chosen bags (deduplicated, sorted).
    #[must_use]
    pub fn new(mut bags: Vec<VarSet>) -> Self {
        bags.sort_unstable();
        bags.dedup();
        BagSelector { bags }
    }

    /// The distinct bags of the selector.
    #[must_use]
    pub fn bags(&self) -> &[VarSet] {
        &self.bags
    }

    /// Number of distinct bags.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// `true` iff the selector is empty (only possible with no TDs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Enumerates `BS(Q)`: every way of choosing one bag from each of the
    /// given tree decompositions.  Selectors that end up with the same set
    /// of distinct bags are merged.
    #[must_use]
    pub fn enumerate(tds: &[TreeDecomposition]) -> Vec<BagSelector> {
        if tds.is_empty() {
            return Vec::new();
        }
        let mut selectors: Vec<Vec<VarSet>> = vec![Vec::new()];
        for td in tds {
            let mut next = Vec::with_capacity(selectors.len() * td.num_bags());
            for partial in &selectors {
                for &bag in td.bags() {
                    let mut choice = partial.clone();
                    choice.push(bag);
                    next.push(choice);
                }
            }
            selectors = next;
        }
        let mut result: Vec<BagSelector> = selectors.into_iter().map(BagSelector::new).collect();
        result.sort();
        result.dedup();
        result
    }
}

/// A disjunctive datalog rule
/// `⋁_{B ∈ head} Q_B(B)  :-  ⋀_{R(X) ∈ body} R(X)` (Eq. 34).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctiveRule {
    /// The head disjuncts: each is a set of variables (the schema of one
    /// target relation `Q_B`).
    head: Vec<VarSet>,
    /// The body atoms.
    body: Vec<Atom>,
    /// Variable names (shared with the originating query) for display.
    var_names: Vec<String>,
}

impl DisjunctiveRule {
    /// Creates a DDR from head variable sets and body atoms.
    #[must_use]
    pub fn new(head: Vec<VarSet>, body: Vec<Atom>, var_names: Vec<String>) -> Self {
        let mut head = head;
        head.sort_unstable();
        head.dedup();
        DisjunctiveRule { head, body, var_names }
    }

    /// Builds the DDR of a query for a given bag selector: the head is the
    /// selector's bags, the body is the query's body.
    #[must_use]
    pub fn for_bag_selector(query: &ConjunctiveQuery, selector: &BagSelector) -> Self {
        DisjunctiveRule::new(
            selector.bags().to_vec(),
            query.atoms().to_vec(),
            query.var_names().to_vec(),
        )
    }

    /// The head disjuncts (target schemas).
    #[must_use]
    pub fn head(&self) -> &[VarSet] {
        &self.head
    }

    /// The body atoms.
    #[must_use]
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// Variable names for display.
    #[must_use]
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// All body variables.
    #[must_use]
    pub fn body_vars(&self) -> VarSet {
        self.body.iter().fold(VarSet::EMPTY, |acc, a| acc.union(a.var_set()))
    }

    /// `true` iff the rule is simply a conjunctive query (single disjunct).
    #[must_use]
    pub fn is_conjunctive(&self) -> bool {
        self.head.len() == 1
    }

    /// Pretty-prints the rule, e.g.
    /// `A0(X,Y,Z) ∨ A1(Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)`.
    #[must_use]
    pub fn display(&self) -> String {
        let head: Vec<String> = self
            .head
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let vars: Vec<&str> = b
                    .iter()
                    .map(|v| self.var_names.get(v.index()).map_or("?", String::as_str))
                    .collect();
                format!("A{i}({})", vars.join(","))
            })
            .collect();
        let body: Vec<String> = self
            .body
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a
                    .vars
                    .iter()
                    .map(|v| self.var_names.get(v.index()).map_or("?", String::as_str))
                    .collect();
                format!("{}({})", a.relation, vars.join(","))
            })
            .collect();
        format!("{} :- {}", head.join(" ∨ "), body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::var::Var;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn four_cycle_tds() -> (ConjunctiveQuery, Vec<TreeDecomposition>) {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let tds = TreeDecomposition::enumerate(&q);
        (q, tds)
    }

    #[test]
    fn four_cycle_has_four_bag_selectors() {
        // Section 5.1: BS(Q□) consists of four bag selectors (one bag from
        // each of the two TDs of Figure 1).
        let (_, tds) = four_cycle_tds();
        let selectors = BagSelector::enumerate(&tds);
        assert_eq!(selectors.len(), 4);
        for s in &selectors {
            assert_eq!(s.len(), 2);
            assert!(!s.is_empty());
        }
        // Each selector pairs one bag of T1 with one bag of T2.
        let t1_bags = [vs(&[0, 1, 2]), vs(&[0, 2, 3])];
        let t2_bags = [vs(&[1, 2, 3]), vs(&[0, 1, 3])];
        for s in &selectors {
            assert!(s.bags().iter().any(|b| t1_bags.contains(b)));
            assert!(s.bags().iter().any(|b| t2_bags.contains(b)));
        }
    }

    #[test]
    fn selectors_with_shared_bags_are_merged() {
        let td1 = TreeDecomposition::new(vec![vs(&[0, 1]), vs(&[1, 2])]);
        let td2 = TreeDecomposition::new(vec![vs(&[0, 1]), vs(&[2, 3])]);
        let selectors = BagSelector::enumerate(&[td1, td2]);
        // Raw cross product has 4 choices; the {0,1}+{0,1} choice collapses
        // to a single-bag selector.
        assert!(selectors.iter().any(|s| s.len() == 1));
        assert_eq!(selectors.len(), 4);
    }

    #[test]
    fn no_tds_gives_no_selectors() {
        assert!(BagSelector::enumerate(&[]).is_empty());
    }

    #[test]
    fn ddr_for_selector_reproduces_eq_38() {
        // The DDR A11(X,Y,Z) ∨ A21(Y,Z,W) :- R(X,Y),S(Y,Z),T(Z,W),U(W,X).
        let (q, _) = four_cycle_tds();
        let selector = BagSelector::new(vec![vs(&[0, 1, 2]), vs(&[1, 2, 3])]);
        let ddr = DisjunctiveRule::for_bag_selector(&q, &selector);
        assert_eq!(ddr.head().len(), 2);
        assert_eq!(ddr.body().len(), 4);
        assert!(!ddr.is_conjunctive());
        assert_eq!(ddr.body_vars(), q.all_vars());
        assert_eq!(ddr.display(), "A0(X,Y,Z) ∨ A1(Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
    }

    #[test]
    fn single_disjunct_rule_is_conjunctive() {
        let (q, _) = four_cycle_tds();
        let selector = BagSelector::new(vec![q.all_vars()]);
        let ddr = DisjunctiveRule::for_bag_selector(&q, &selector);
        assert!(ddr.is_conjunctive());
    }
}
