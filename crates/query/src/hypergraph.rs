//! Query hypergraphs, GYO reduction, acyclicity and join trees.

// panda-lint: allow-file(P1) -- vertex and edge ids are minted by this
// module's own builders, so adjacency lookups are in range by
// construction.

use crate::var::{Var, VarSet};

/// The hypergraph of a query: one hyperedge per atom (Section 3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vars: usize,
    edges: Vec<VarSet>,
}

/// A rooted join tree over a set of hyperedges (indices refer to the edge
/// list the tree was built from).  Produced by [`Hypergraph::join_tree`] /
/// [`join_tree_of`] for acyclic hypergraphs; consumed by the Yannakakis
/// implementation in `panda-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    /// Index of the root edge.
    pub root: usize,
    /// Parent of each edge (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children of each edge.
    pub children: Vec<Vec<usize>>,
    /// A bottom-up ordering (every node appears after all of its children).
    pub bottom_up: Vec<usize>,
}

impl JoinTree {
    /// A top-down ordering (root first).
    #[must_use]
    pub fn top_down(&self) -> Vec<usize> {
        let mut order = self.bottom_up.clone();
        order.reverse();
        order
    }

    /// The number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

impl Hypergraph {
    /// Creates a hypergraph over `num_vars` variables with the given edges.
    #[must_use]
    pub fn new(num_vars: usize, edges: Vec<VarSet>) -> Self {
        Hypergraph { num_vars, edges }
    }

    /// The hyperedges.
    #[must_use]
    pub fn edges(&self) -> &[VarSet] {
        &self.edges
    }

    /// The number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The union of all edges.
    #[must_use]
    pub fn vertices(&self) -> VarSet {
        self.edges.iter().fold(VarSet::EMPTY, |acc, e| acc.union(*e))
    }

    /// The neighbours of `v`: all variables sharing an edge with `v`,
    /// excluding `v` itself.
    #[must_use]
    pub fn neighbors(&self, v: Var) -> VarSet {
        self.edges
            .iter()
            .filter(|e| e.contains(v))
            .fold(VarSet::EMPTY, |acc, e| acc.union(*e))
            .without(v)
    }

    /// Eliminates a variable: all edges containing `v` are replaced by a
    /// single edge over their union minus `v` (the standard step of
    /// variable elimination / bucket elimination).  Returns the *bag*
    /// created by the elimination (`{v} ∪ neighbours(v)`), and mutates the
    /// hypergraph in place.
    pub fn eliminate(&mut self, v: Var) -> VarSet {
        let bag = self.neighbors(v).with(v);
        let mut merged = VarSet::EMPTY;
        self.edges.retain(|e| {
            if e.contains(v) {
                merged = merged.union(*e);
                false
            } else {
                true
            }
        });
        let new_edge = merged.without(v);
        if !new_edge.is_empty() {
            self.edges.push(new_edge);
        }
        bag
    }

    /// `true` iff the hypergraph is α-acyclic (GYO reduction succeeds).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        is_acyclic(&self.edges)
    }

    /// A join tree over the edges, if the hypergraph is acyclic.
    #[must_use]
    pub fn join_tree(&self) -> Option<JoinTree> {
        join_tree_of(&self.edges)
    }
}

/// `true` iff the given hyperedges form an α-acyclic hypergraph, decided by
/// the GYO (Graham / Yu–Özsoyoğlu) reduction.
#[must_use]
pub fn is_acyclic(edges: &[VarSet]) -> bool {
    join_tree_of(edges).is_some()
}

/// Builds a join tree for an acyclic set of hyperedges via GYO reduction
/// with witness tracking, or returns `None` if the hypergraph is cyclic.
///
/// The classic GYO rules are applied until fixpoint:
///
/// 1. *ear vertex removal* — a vertex occurring in exactly one live edge is
///    deleted from it;
/// 2. *contained edge removal* — a live edge whose (reduced) content is a
///    subset of another live edge's content is removed, and attached to
///    that witness edge in the join tree.
///
/// The hypergraph is acyclic iff the process ends with a single live edge,
/// which becomes the root.
#[must_use]
pub fn join_tree_of(edges: &[VarSet]) -> Option<JoinTree> {
    let n = edges.len();
    if n == 0 {
        return Some(JoinTree {
            root: 0,
            parent: Vec::new(),
            children: Vec::new(),
            bottom_up: Vec::new(),
        });
    }
    let mut reduced: Vec<VarSet> = edges.to_vec();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut alive_count = n;

    loop {
        let mut changed = false;

        // Rule 1: remove vertices occurring in exactly one live edge.
        let universe = reduced
            .iter()
            .zip(&alive)
            .filter(|(_, a)| **a)
            .fold(VarSet::EMPTY, |acc, (e, _)| acc.union(*e));
        for v in universe.iter() {
            let mut count = 0usize;
            let mut only = usize::MAX;
            for (i, e) in reduced.iter().enumerate() {
                if alive[i] && e.contains(v) {
                    count += 1;
                    only = i;
                    if count > 1 {
                        break;
                    }
                }
            }
            if count == 1 {
                reduced[only] = reduced[only].without(v);
                changed = true;
            }
        }

        // Rule 2: remove edges contained in another live edge.
        'outer: for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in 0..n {
                if i != j && alive[j] && reduced[i].is_subset_of(reduced[j]) {
                    alive[i] = false;
                    alive_count -= 1;
                    parent[i] = Some(j);
                    changed = true;
                    continue 'outer;
                }
            }
        }

        if alive_count <= 1 {
            break;
        }
        if !changed {
            return None; // cyclic
        }
    }

    let root = alive.iter().position(|a| *a).unwrap_or(0);
    // Path-compress parents so they point at live representatives forming a
    // tree rooted at `root` (parents recorded during GYO always point to a
    // later-removed or live edge, so the chain terminates).
    let resolve_root = |mut i: usize, parent: &[Option<usize>]| -> usize {
        let mut guard = 0;
        while let Some(p) = parent[i] {
            i = p;
            guard += 1;
            assert!(guard <= parent.len(), "cycle in GYO parent chain");
        }
        i
    };
    debug_assert_eq!(resolve_root(root, &parent), root);

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(i);
        }
    }
    // Bottom-up order via DFS from the root.
    let mut bottom_up = Vec::with_capacity(n);
    let mut stack = vec![(root, false)];
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            bottom_up.push(node);
        } else {
            stack.push((node, true));
            for &c in &children[node] {
                stack.push((c, false));
            }
        }
    }
    if bottom_up.len() != n {
        // Disconnected hypergraphs: attach remaining components' roots to
        // the global root so Yannakakis still works (their join is a cross
        // product at the root).
        let mut missing: Vec<usize> = (0..n).filter(|i| !bottom_up.contains(i)).collect();
        // Find the local roots among missing nodes (those whose parent is None).
        missing.retain(|&i| parent[i].is_none());
        for i in missing {
            parent[i] = Some(root);
            children[root].push(i);
        }
        // Recompute the order.
        bottom_up.clear();
        let mut stack = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                bottom_up.push(node);
            } else {
                stack.push((node, true));
                for &c in &children[node] {
                    stack.push((c, false));
                }
            }
        }
        if bottom_up.len() != n {
            return None;
        }
    }

    Some(JoinTree { root, parent, children, bottom_up })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    #[test]
    fn path_query_is_acyclic() {
        // R(X,Y), S(Y,Z), T(Z,W)
        let edges = vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3])];
        assert!(is_acyclic(&edges));
        let tree = join_tree_of(&edges).unwrap();
        assert_eq!(tree.len(), 3);
        // The bottom-up order ends at the root and contains every node.
        assert_eq!(*tree.bottom_up.last().unwrap(), tree.root);
        let mut seen = tree.bottom_up.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let edges = vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3]), vs(&[3, 0])];
        assert!(!is_acyclic(&edges));
        assert!(join_tree_of(&edges).is_none());
    }

    #[test]
    fn triangle_is_cyclic() {
        let edges = vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[0, 2])];
        assert!(!is_acyclic(&edges));
    }

    #[test]
    fn star_query_is_acyclic() {
        let edges = vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[0, 3])];
        assert!(is_acyclic(&edges));
        let tree = join_tree_of(&edges).unwrap();
        // a star join tree: one root, two children (or a chain); all nodes present.
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.top_down().len(), 3);
    }

    #[test]
    fn contained_edges_are_acyclic() {
        let edges = vec![vs(&[0, 1, 2]), vs(&[0, 1]), vs(&[2])];
        assert!(is_acyclic(&edges));
        let tree = join_tree_of(&edges).unwrap();
        assert_eq!(tree.root, 0);
        assert_eq!(tree.parent[1], Some(0));
        assert_eq!(tree.parent[2], Some(0));
    }

    #[test]
    fn papers_td_bags_are_acyclic_with_free_atom() {
        // bags(T1) = {XYZ, ZWX} plus the free atom {XY}: acyclic (free-connex).
        let edges = vec![vs(&[0, 1, 2]), vs(&[2, 3, 0]), vs(&[0, 1])];
        assert!(is_acyclic(&edges));
        // bags {XZ},{YZ} plus free atom {XY}: the triangle ⇒ cyclic.
        let edges = vec![vs(&[0, 2]), vs(&[1, 2]), vs(&[0, 1])];
        assert!(!is_acyclic(&edges));
    }

    #[test]
    fn disconnected_components_form_a_tree() {
        let edges = vec![vs(&[0, 1]), vs(&[2, 3])];
        assert!(is_acyclic(&edges));
        let tree = join_tree_of(&edges).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(*tree.bottom_up.last().unwrap(), tree.root);
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(is_acyclic(&[]));
        assert!(is_acyclic(&[vs(&[0, 1, 2])]));
        let tree = join_tree_of(&[vs(&[0, 1, 2])]).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root, 0);
    }

    #[test]
    fn elimination_produces_expected_bags() {
        // 4-cycle: eliminating Y gives bag {X,Y,Z} and a new edge {X,Z}.
        let mut h = Hypergraph::new(4, vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3]), vs(&[3, 0])]);
        assert_eq!(h.vertices().len(), 4);
        assert_eq!(h.neighbors(Var(1)), vs(&[0, 2]));
        let bag = h.eliminate(Var(1));
        assert_eq!(bag, vs(&[0, 1, 2]));
        assert!(h.edges().contains(&vs(&[0, 2])));
        assert_eq!(h.edges().len(), 3);
        // the remaining hypergraph is the triangle X,Z,W.
        assert!(!h.is_acyclic());
    }

    #[test]
    fn acyclic_hypergraph_methods() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2])]);
        assert!(h.is_acyclic());
        assert!(h.join_tree().is_some());
    }
}
