//! The Reset Lemma (Section 7.2).
//!
//! Given an integral Shannon-flow inequality in identity form, dropping any
//! *unconditional* source term yields another valid inequality that loses
//! **at most one** target term.  PANDAExpress uses this during execution:
//! when the sub-probability mass of one intermediate term drops below the
//! budget `1/B`, the term is dropped and the remaining terms still certify
//! the bound for the remaining targets (Section 8.2).

use panda_entropy::{CondTerm, Elemental};
use panda_query::VarSet;

use crate::identity::TermIdentity;

/// The result of applying the Reset Lemma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetOutcome {
    /// The new, still-valid identity.
    pub identity: TermIdentity,
    /// The (at most one) target term that had to be given up.
    pub lost_target: Option<VarSet>,
}

/// Drops one occurrence of the unconditional source term `h(drop)` from the
/// identity, returning a new valid identity that loses at most one target
/// (the Reset Lemma, Section 7.2).
///
/// # Errors
///
/// Returns an error if `h(drop)` is not an unconditional source of the
/// identity, or if the identity itself is invalid.
pub fn reset_drop_source(identity: &TermIdentity, drop: VarSet) -> Result<ResetOutcome, String> {
    identity.verify()?;
    let mut id = identity.clone();
    let drop_term = CondTerm::new(VarSet::EMPTY, drop);
    if id.sources.get(&drop_term).copied().unwrap_or(0) == 0 {
        return Err(format!("{drop:?} is not an unconditional source term of the identity"));
    }

    // Invariant: `current` is an unconditional source term present in `id`
    // that we are trying to eliminate while keeping the identity balanced.
    let mut current = drop;
    let iteration_limit =
        id.sources.values().sum::<u64>() as usize + id.witness.values().sum::<u64>() as usize + 4;

    for _ in 0..=iteration_limit {
        let current_term = CondTerm::new(VarSet::EMPTY, current);

        // (a) `current` is a target: cancel it on both sides; one target lost.
        if id.targets.get(&current).copied().unwrap_or(0) > 0 {
            id.take_target(current);
            id.take_source(current_term);
            id.verify()?;
            return Ok(ResetOutcome { identity: id, lost_target: Some(current) });
        }

        // (b) a conditional source `h(Z|current)` exists: merge the two
        //     sources into `h(current ∪ Z)` and continue with that term.
        if let Some(term) = id
            .sources
            .iter()
            .find(|(t, c)| t.cond == current && !t.subj.is_empty() && **c > 0)
            .map(|(t, _)| *t)
        {
            id.take_source(current_term);
            id.take_source(term);
            let merged = current.union(term.subj);
            id.put_source(CondTerm::new(VarSet::EMPTY, merged));
            current = merged;
            continue;
        }

        // (c) a witness submodularity with one side equal to `current`:
        //     replace the source by `h(A∪B∪ctx)` and the submodularity by
        //     the monotonicity `h(other∪ctx) ≥ h(ctx)` (the paper's move).
        if let Some((e, other, ctx, full)) = id.witness.iter().find_map(|(e, c)| {
            if *c == 0 {
                return None;
            }
            match *e {
                Elemental::Submodular { a, b, ctx } if ctx.union(a) == current => {
                    Some((*e, b, ctx, ctx.union(a).union(b)))
                }
                Elemental::Submodular { a, b, ctx } if ctx.union(b) == current => {
                    Some((*e, a, ctx, ctx.union(a).union(b)))
                }
                _ => None,
            }
        }) {
            id.take_witness(e);
            id.take_source(current_term);
            id.put_source(CondTerm::new(VarSet::EMPTY, full));
            id.put_witness(Elemental::Monotone { from: ctx.union(other), to: ctx });
            current = full;
            continue;
        }

        // (d) a witness monotonicity starting at `current`: follow it down.
        if let Some((e, to)) = id.witness.iter().find_map(|(e, c)| {
            if *c == 0 {
                return None;
            }
            match *e {
                Elemental::Monotone { from, to } if from == current => Some((*e, to)),
                _ => None,
            }
        }) {
            id.take_witness(e);
            id.take_source(current_term);
            if to.is_empty() {
                // The term vanished into h(∅) = 0: no target lost at all.
                id.verify()?;
                return Ok(ResetOutcome { identity: id, lost_target: None });
            }
            id.put_source(CondTerm::new(VarSet::EMPTY, to));
            current = to;
            continue;
        }

        return Err(format!(
            "reset got stuck at term {current:?}; the identity appears to be invalid"
        ));
    }
    Err("reset did not terminate within the iteration limit".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::tests::{paper_identity_63, vs};
    use crate::sequence::ProofSequence;

    #[test]
    fn papers_reset_example_drops_h_xy_and_loses_only_h_xyz() {
        // Section 7.2: dropping h(XY) from Eq. (62) yields Eq. (68)
        // h(YZW) ≤ h(YZ) + h(ZW), losing the target h(XYZ) but never both.
        let id = paper_identity_63();
        let outcome = reset_drop_source(&id, vs(&[0, 1])).unwrap();
        assert_eq!(outcome.lost_target, Some(vs(&[0, 1, 2])));
        let new_id = &outcome.identity;
        new_id.verify().unwrap();
        // Remaining target: h(YZW) only.
        assert_eq!(new_id.num_targets(), 1);
        assert_eq!(new_id.targets.get(&vs(&[1, 2, 3])).copied(), Some(1));
        // Remaining sources: h(YZ) and h(ZW) (Eq. 68's right-hand side).
        assert_eq!(new_id.num_unconditional_sources(), 2);
        assert!(new_id.sources.contains_key(&CondTerm::new(VarSet::EMPTY, vs(&[1, 2]))));
        assert!(new_id.sources.contains_key(&CondTerm::new(VarSet::EMPTY, vs(&[2, 3]))));
        // The paper's witness: the monotonicity −h(YZ)+h(Y) ≤ 0 appears.
        assert!(new_id
            .witness
            .keys()
            .any(|e| matches!(e, Elemental::Monotone { from, to } if *from == vs(&[1, 2]) && *to == vs(&[1]))));
        // And the reduced inequality still has a proof sequence.
        let seq = ProofSequence::derive(new_id).unwrap();
        seq.verify().unwrap();
    }

    #[test]
    fn reset_on_every_source_of_eq62_loses_at_most_one_target() {
        let id = paper_identity_63();
        for source in [vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3])] {
            let outcome = reset_drop_source(&id, source).unwrap();
            outcome.identity.verify().unwrap();
            let lost = u64::from(outcome.lost_target.is_some());
            assert_eq!(outcome.identity.num_targets() + lost, id.num_targets());
            // Exactly one unconditional source occurrence is consumed.
            assert_eq!(
                outcome.identity.num_unconditional_sources(),
                id.num_unconditional_sources() - 1
            );
        }
    }

    #[test]
    fn dropping_a_non_source_is_an_error() {
        let id = paper_identity_63();
        assert!(reset_drop_source(&id, vs(&[0, 3])).is_err());
        assert!(reset_drop_source(&id, vs(&[0, 1, 2])).is_err());
    }

    #[test]
    fn reset_can_lose_no_target_when_the_term_dissolves() {
        // Identity: h(X) = h(X) + h(Y) − [h(Y) ≥ h(∅)]: dropping h(Y) loses
        // nothing.
        let mut id = paper_identity_63();
        id.targets.clear();
        id.sources.clear();
        id.witness.clear();
        id.targets.insert(vs(&[0]), 1);
        id.sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[0])), 1);
        id.sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[1])), 1);
        id.witness.insert(Elemental::Monotone { from: vs(&[1]), to: VarSet::EMPTY }, 1);
        id.verify().unwrap();
        let outcome = reset_drop_source(&id, vs(&[1])).unwrap();
        assert_eq!(outcome.lost_target, None);
        assert_eq!(outcome.identity.num_targets(), 1);
    }

    #[test]
    fn reset_applies_to_lp_extracted_flows() {
        use crate::identity::TermIdentity;
        use panda_entropy::{ddr_polymatroid_bound, StatisticsSet};
        use panda_query::parse_query;
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 4096);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], q.all_vars(), &stats).unwrap();
        let id = TermIdentity::from_flow(&report.flow.to_integral().unwrap());
        // Drop each unconditional source in turn; at most one target is lost
        // every time and the result remains a valid identity.
        let sources: Vec<_> =
            id.sources.keys().filter(|t| t.is_unconditional()).map(|t| t.subj).collect();
        assert!(!sources.is_empty());
        for s in sources {
            let outcome = reset_drop_source(&id, s).unwrap();
            outcome.identity.verify().unwrap();
            let lost = u64::from(outcome.lost_target.is_some());
            assert!(id.num_targets() - outcome.identity.num_targets() <= lost);
        }
    }
}
