//! Proof sequences for Shannon-flow inequalities (Section 7 of the paper).
//!
//! The bridge between the *bound* and the *algorithm* in PANDA is the
//! observation that every integral Shannon-flow inequality can be proved by
//! a sequence of four kinds of local rewrite steps — decomposition,
//! composition, monotonicity and submodularity (Eq. 64–67) — that transform
//! the source terms of the inequality into its target terms.  Each step has
//! a direct relational-operator interpretation (Section 8), which is how
//! `panda-core` turns a proof into a query plan.
//!
//! This crate provides:
//!
//! * [`TermIdentity`] — the *identity form* of an integral Shannon-flow
//!   inequality (Eq. 63): targets = sources + negated witness, as exact
//!   multisets,
//! * [`ProofStep`] / [`ProofSequence`] — the four step kinds, the
//!   constructive proof-sequence extraction of Section 7.1 (reproducing
//!   Table 1 on the paper's running example), and a machine verifier that
//!   replays a sequence against the source terms,
//! * [`reset`] — the Reset Lemma of Section 7.2: dropping an unconditional
//!   source term from a valid inequality loses at most one target term.

#![forbid(unsafe_code)]
pub mod identity;
pub mod reset;
pub mod sequence;

pub use identity::TermIdentity;
pub use reset::{reset_drop_source, ResetOutcome};
pub use sequence::{ProofSequence, ProofStep};
