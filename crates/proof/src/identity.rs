//! The identity form of an integral Shannon-flow inequality (Eq. 63).

use std::collections::BTreeMap;

use panda_entropy::{CondTerm, Elemental, IntegralShannonFlow};
use panda_query::VarSet;

/// The identity form of an integral Shannon-flow inequality:
///
/// ```text
///   Σ (targets)  =  Σ (sources)  +  Σ (negated witness inequalities)
/// ```
///
/// where targets are unconditional terms `h(B)` (with multiplicity),
/// sources are conditional terms `h(Y|X)` (with multiplicity), and each
/// witness entry is a basic Shannon inequality whose negation appears on
/// the right-hand side (so the identity holds *as a formal linear
/// identity*, Eq. 63).
///
/// Both the proof-sequence construction (Section 7.1) and the Reset Lemma
/// (Section 7.2) operate on this representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermIdentity {
    /// The variable universe.
    pub universe: VarSet,
    /// Target terms `h(B)` with multiplicities.
    pub targets: BTreeMap<VarSet, u64>,
    /// Source terms `h(Y|X)` with multiplicities.
    pub sources: BTreeMap<CondTerm, u64>,
    /// Witness inequalities (each `expr ≥ 0`) appearing negated on the RHS,
    /// with multiplicities.
    pub witness: BTreeMap<Elemental, u64>,
}

impl TermIdentity {
    /// Builds the identity form from an integral Shannon flow.
    #[must_use]
    pub fn from_flow(flow: &IntegralShannonFlow) -> Self {
        let mut targets: BTreeMap<VarSet, u64> = BTreeMap::new();
        for (b, c) in &flow.targets {
            if *c > 0 {
                *targets.entry(*b).or_default() += c;
            }
        }
        let mut sources: BTreeMap<CondTerm, u64> = BTreeMap::new();
        for (t, c, _) in &flow.sources {
            if *c > 0 {
                *sources.entry(*t).or_default() += c;
            }
        }
        let mut witness: BTreeMap<Elemental, u64> = BTreeMap::new();
        for (e, c) in &flow.witness {
            if *c > 0 {
                *witness.entry(*e).or_default() += c;
            }
        }
        TermIdentity { universe: flow.universe, targets, sources, witness }
    }

    /// Total number of target occurrences.
    #[must_use]
    pub fn num_targets(&self) -> u64 {
        self.targets.values().sum()
    }

    /// Total number of unconditional source occurrences.
    #[must_use]
    pub fn num_unconditional_sources(&self) -> u64 {
        self.sources.iter().filter(|(t, _)| t.is_unconditional()).map(|(_, c)| *c).sum()
    }

    /// Verifies that the identity holds as a formal linear identity:
    /// for every non-empty subset `S`,
    /// `coeff_targets(S) = coeff_sources(S) − coeff_witness(S)`.
    pub fn verify(&self) -> Result<(), String> {
        let mut balance: BTreeMap<VarSet, i128> = BTreeMap::new();
        let mut add = |set: VarSet, c: i128| {
            if set.is_empty() || c == 0 {
                return;
            }
            *balance.entry(set).or_insert(0) += c;
        };
        for (b, c) in &self.targets {
            add(*b, -i128::from(*c));
        }
        for (t, c) in &self.sources {
            add(t.joint(), i128::from(*c));
            add(t.cond, -i128::from(*c));
        }
        for (e, mu) in &self.witness {
            if !e.is_well_formed() {
                return Err(format!("malformed witness inequality {e:?}"));
            }
            for (s, coeff) in e.coefficients() {
                // witness appears negated on the RHS: sources − expr.
                add(s, -i128::from(*mu) * i128::from(coeff));
            }
        }
        for (s, v) in balance {
            if v != 0 {
                return Err(format!("identity does not balance at {s:?}: residue {v}"));
            }
        }
        Ok(())
    }

    /// The counting invariant of Section 7.1: as long as the identity has a
    /// target term, it has at least one unconditional source term.  (The
    /// all-ones polymatroid argument of the paper.)
    #[must_use]
    pub fn has_unconditional_source(&self) -> bool {
        self.num_unconditional_sources() > 0
    }

    /// Removes one occurrence of a source term.  Returns `false` if absent.
    pub(crate) fn take_source(&mut self, term: CondTerm) -> bool {
        match self.sources.get_mut(&term) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.sources.remove(&term);
                }
                true
            }
            _ => false,
        }
    }

    /// Adds one occurrence of a source term (no-op for the empty term).
    pub(crate) fn put_source(&mut self, term: CondTerm) {
        if term.joint().is_empty() {
            return;
        }
        *self.sources.entry(term).or_default() += 1;
    }

    /// Removes one occurrence of a witness inequality.  Returns `false` if
    /// absent.
    pub(crate) fn take_witness(&mut self, e: Elemental) -> bool {
        match self.witness.get_mut(&e) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.witness.remove(&e);
                }
                true
            }
            _ => false,
        }
    }

    /// Adds one occurrence of a witness inequality.
    pub(crate) fn put_witness(&mut self, e: Elemental) {
        *self.witness.entry(e).or_default() += 1;
    }

    /// Removes one occurrence of a target.  Returns `false` if absent.
    pub(crate) fn take_target(&mut self, b: VarSet) -> bool {
        match self.targets.get_mut(&b) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.targets.remove(&b);
                }
                true
            }
            _ => false,
        }
    }

    /// Pretty-prints the identity with variable names.
    #[must_use]
    pub fn display_with(&self, names: &[String]) -> String {
        let t: Vec<String> =
            self.targets.iter().map(|(b, c)| format!("{c}·h{}", b.display_with(names))).collect();
        let s: Vec<String> = self
            .sources
            .iter()
            .map(|(term, c)| format!("{c}·{}", term.display_with(names)))
            .collect();
        let w: Vec<String> =
            self.witness.iter().map(|(e, c)| format!("{c}·[{}]", e.display_with(names))).collect();
        format!("{} = {} − ({})", t.join(" + "), s.join(" + "), w.join(" + "))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use panda_query::{Var, VarSet};

    pub(crate) fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    /// The paper's identity (63):
    /// `h(XYZ) + h(YZW) = h(XY) + h(YZ) + h(ZW)
    ///                    − submod(X;Z|Y) − submod(Y;ZW|∅)`.
    pub(crate) fn paper_identity_63() -> TermIdentity {
        let mut targets = BTreeMap::new();
        targets.insert(vs(&[0, 1, 2]), 1);
        targets.insert(vs(&[1, 2, 3]), 1);
        let mut sources = BTreeMap::new();
        sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[0, 1])), 1);
        sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[1, 2])), 1);
        sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[2, 3])), 1);
        let mut witness = BTreeMap::new();
        witness.insert(Elemental::Submodular { a: vs(&[0]), b: vs(&[2]), ctx: vs(&[1]) }, 1);
        witness
            .insert(Elemental::Submodular { a: vs(&[1]), b: vs(&[2, 3]), ctx: VarSet::EMPTY }, 1);
        TermIdentity { universe: vs(&[0, 1, 2, 3]), targets, sources, witness }
    }

    #[test]
    fn identity_63_verifies() {
        let id = paper_identity_63();
        id.verify().expect("Eq. (63) is a valid identity");
        assert_eq!(id.num_targets(), 2);
        assert_eq!(id.num_unconditional_sources(), 3);
        assert!(id.has_unconditional_source());
    }

    #[test]
    fn broken_identities_are_rejected() {
        let mut id = paper_identity_63();
        id.targets.insert(vs(&[0, 3]), 1);
        assert!(id.verify().is_err());

        let mut id2 = paper_identity_63();
        id2.witness.clear();
        assert!(id2.verify().is_err());
    }

    #[test]
    fn multiset_mutators_round_trip() {
        let mut id = paper_identity_63();
        let term = CondTerm::new(VarSet::EMPTY, vs(&[0, 1]));
        assert!(id.take_source(term));
        assert!(!id.sources.contains_key(&term));
        id.put_source(term);
        assert_eq!(id.sources[&term], 1);
        assert!(!id.take_source(CondTerm::new(VarSet::EMPTY, vs(&[0, 3]))));

        let e = Elemental::Submodular { a: vs(&[0]), b: vs(&[2]), ctx: vs(&[1]) };
        assert!(id.take_witness(e));
        assert!(!id.take_witness(e));
        id.put_witness(e);
        assert!(id.take_witness(e));

        assert!(id.take_target(vs(&[0, 1, 2])));
        assert!(!id.take_target(vs(&[0, 1, 2])));
        assert_eq!(id.num_targets(), 1);

        // putting the empty term is a no-op
        id.put_source(CondTerm::new(VarSet::EMPTY, VarSet::EMPTY));
        assert_eq!(id.sources.len(), 3);
    }

    #[test]
    fn display_mentions_all_parts() {
        let names: Vec<String> = ["X", "Y", "Z", "W"].iter().map(|s| s.to_string()).collect();
        let text = paper_identity_63().display_with(&names);
        assert!(text.contains("h{X,Y,Z}"));
        assert!(text.contains("h{Z,W}"));
        assert!(text.contains("≥"));
    }

    #[test]
    fn from_flow_on_the_lp_extracted_certificate() {
        use panda_entropy::{ddr_polymatroid_bound, StatisticsSet};
        use panda_query::parse_query;
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1000);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], q.all_vars(), &stats).unwrap();
        let integral = report.flow.to_integral().unwrap();
        let id = TermIdentity::from_flow(&integral);
        id.verify().expect("LP-extracted identity verifies");
        assert!(id.num_unconditional_sources() >= id.num_targets());
    }
}
