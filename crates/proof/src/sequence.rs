//! Proof-sequence construction (Section 7.1) and verification.

use std::collections::BTreeMap;

use panda_entropy::{CondTerm, Elemental};
use panda_query::VarSet;

use crate::identity::TermIdentity;

/// One proof step (Eq. 64–67 of the paper).  Each step replaces one or two
/// entropy terms by one or two *smaller* terms, and has a direct relational
/// interpretation used by the PANDA evaluator:
///
/// | step | entropy rewrite | relational interpretation |
/// |------|-----------------|---------------------------|
/// | decomposition | `h(XY) → h(X) + h(Y∣X)` | partition the guard of `XY` by the degree of `Y` given `X` |
/// | composition | `h(X) + h(Y∣X) → h(XY)` | join the guard of `X` with the (conditional) guard of `Y∣X` |
/// | monotonicity | `h(XY) → h(X)` | project the guard onto `X` |
/// | submodularity | `h(Y∣X) → h(Y∣XZ)` | reinterpret the conditional guard with a larger condition |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStep {
    /// `h(joint) → h(cond) + h(joint ∖ cond | cond)` with `cond ⊂ joint`.
    Decomposition {
        /// The unconditional term being decomposed.
        joint: VarSet,
        /// The conditioning part kept unconditional.
        cond: VarSet,
    },
    /// `h(cond) + h(subj | cond) → h(cond ∪ subj)`.
    Composition {
        /// The unconditional part.
        cond: VarSet,
        /// The conditional part's subject.
        subj: VarSet,
    },
    /// `h(from) → h(to)` with `to ⊆ from`.
    Monotonicity {
        /// The larger set.
        from: VarSet,
        /// The smaller set.
        to: VarSet,
    },
    /// `h(subj | cond_from) → h(subj | cond_to)` with `cond_from ⊆ cond_to`.
    Submodularity {
        /// The subject set.
        subj: VarSet,
        /// The original condition.
        cond_from: VarSet,
        /// The enlarged condition.
        cond_to: VarSet,
    },
}

impl ProofStep {
    /// Pretty-prints the step with variable names, in the notation of
    /// Table 1 of the paper.
    #[must_use]
    pub fn display_with(&self, names: &[String]) -> String {
        let t = |cond: VarSet, subj: VarSet| CondTerm::new(cond, subj).display_with(names);
        match *self {
            ProofStep::Decomposition { joint, cond } => format!(
                "{} → {} + {}",
                t(VarSet::EMPTY, joint),
                t(VarSet::EMPTY, cond),
                t(cond, joint.difference(cond))
            ),
            ProofStep::Composition { cond, subj } => format!(
                "{} + {} → {}",
                t(VarSet::EMPTY, cond),
                t(cond, subj),
                t(VarSet::EMPTY, cond.union(subj))
            ),
            ProofStep::Monotonicity { from, to } => {
                format!("{} → {}", t(VarSet::EMPTY, from), t(VarSet::EMPTY, to))
            }
            ProofStep::Submodularity { subj, cond_from, cond_to } => {
                format!("{} → {}", t(cond_from, subj), t(cond_to, subj))
            }
        }
    }
}

/// A proof sequence for an integral Shannon-flow inequality: applying the
/// steps to the multiset of source terms produces (a superset of) the
/// multiset of target terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofSequence {
    /// The identity the sequence proves.
    pub identity: TermIdentity,
    /// The steps, in order.
    pub steps: Vec<ProofStep>,
}

impl ProofSequence {
    /// The number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the sequence has no steps (the targets are already among
    /// the sources).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Counts the steps of each kind
    /// `(decompositions, compositions, monotonicities, submodularities)`.
    #[must_use]
    pub fn step_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for s in &self.steps {
            match s {
                ProofStep::Decomposition { .. } => counts.0 += 1,
                ProofStep::Composition { .. } => counts.1 += 1,
                ProofStep::Monotonicity { .. } => counts.2 += 1,
                ProofStep::Submodularity { .. } => counts.3 += 1,
            }
        }
        counts
    }

    /// Constructs a proof sequence from the identity form of an integral
    /// Shannon-flow inequality, following the cancellation procedure of
    /// Section 7.1 (illustrated in Table 1): repeatedly pick an
    /// unconditional source term and either cancel it against a target, or
    /// rewrite it using the witness inequality / conditional source that
    /// cancels it in the identity.
    pub fn derive(identity: &TermIdentity) -> Result<ProofSequence, String> {
        identity.verify()?;
        let mut id = identity.clone();
        let mut steps = Vec::new();
        // Generous bound: every step removes a witness entry, merges two
        // sources, or cancels a target.
        let step_limit = 4
            * (id.num_targets()
                + id.sources.values().sum::<u64>()
                + id.witness.values().sum::<u64>()) as usize
            + 16;

        let mut iterations = 0usize;
        while id.num_targets() > 0 {
            iterations += 1;
            if iterations > step_limit {
                return Err("proof sequence derivation did not terminate".to_string());
            }
            let candidates: Vec<VarSet> = id
                .sources
                .iter()
                .filter(|(t, c)| t.is_unconditional() && **c > 0)
                .map(|(t, _)| t.subj)
                .collect();
            if candidates.is_empty() {
                return Err(
                    "no unconditional source term available, yet targets remain".to_string()
                );
            }
            let mut progressed = false;
            for y in candidates {
                if Self::try_consume(&mut id, y, &mut steps) {
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return Err(format!(
                    "stuck: no unconditional source term can be rewritten in {id:?}"
                ));
            }
        }
        let sequence = ProofSequence { identity: identity.clone(), steps };
        sequence.verify()?;
        Ok(sequence)
    }

    /// Attempts to make progress on the unconditional source term `h(y)`;
    /// returns `true` and appends the emitted steps if it did.
    fn try_consume(id: &mut TermIdentity, y: VarSet, steps: &mut Vec<ProofStep>) -> bool {
        let y_term = CondTerm::new(VarSet::EMPTY, y);

        // (a) `y` is a target: cancel it from both sides.
        if id.targets.get(&y).copied().unwrap_or(0) > 0 {
            id.take_target(y);
            id.take_source(y_term);
            return true;
        }

        // (b) a conditional source `h(Z|y)` exists: composition step.
        if let Some(term) = id
            .sources
            .iter()
            .find(|(t, c)| t.cond == y && !t.subj.is_empty() && **c > 0)
            .map(|(t, _)| *t)
        {
            id.take_source(y_term);
            id.take_source(term);
            id.put_source(CondTerm::new(VarSet::EMPTY, y.union(term.subj)));
            steps.push(ProofStep::Composition { cond: y, subj: term.subj });
            return true;
        }

        // (c) a witness submodularity with one side equal to `y`:
        //     decomposition (if the context is non-empty) + submodularity.
        if let Some((e, blk, other, ctx)) = id.witness.iter().find_map(|(e, c)| {
            if *c == 0 {
                return None;
            }
            match *e {
                Elemental::Submodular { a, b, ctx } if ctx.union(a) == y => Some((*e, a, b, ctx)),
                Elemental::Submodular { a, b, ctx } if ctx.union(b) == y => Some((*e, b, a, ctx)),
                _ => None,
            }
        }) {
            id.take_witness(e);
            id.take_source(y_term);
            if !ctx.is_empty() {
                steps.push(ProofStep::Decomposition { joint: y, cond: ctx });
                id.put_source(CondTerm::new(VarSet::EMPTY, ctx));
            }
            steps.push(ProofStep::Submodularity {
                subj: blk,
                cond_from: ctx,
                cond_to: ctx.union(other),
            });
            id.put_source(CondTerm::new(ctx.union(other), blk));
            return true;
        }

        // (d) a witness monotonicity starting at `y`.
        if let Some((e, to)) = id.witness.iter().find_map(|(e, c)| {
            if *c == 0 {
                return None;
            }
            match *e {
                Elemental::Monotone { from, to } if from == y => Some((*e, to)),
                _ => None,
            }
        }) {
            id.take_witness(e);
            id.take_source(y_term);
            steps.push(ProofStep::Monotonicity { from: y, to });
            if !to.is_empty() {
                id.put_source(CondTerm::new(VarSet::EMPTY, to));
            }
            return true;
        }

        false
    }

    /// Verifies the sequence by replaying it: starting from the multiset of
    /// source terms, every step must find the terms it rewrites, and at the
    /// end every target term (with multiplicity) must be present among the
    /// remaining unconditional terms.
    pub fn verify(&self) -> Result<(), String> {
        let mut terms: BTreeMap<CondTerm, u64> = self.identity.sources.clone();
        let take = |terms: &mut BTreeMap<CondTerm, u64>, t: CondTerm| -> Result<(), String> {
            match terms.get_mut(&t) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    if *c == 0 {
                        terms.remove(&t);
                    }
                    Ok(())
                }
                _ => Err(format!("replay failed: term {t:?} not available")),
            }
        };
        let put = |terms: &mut BTreeMap<CondTerm, u64>, t: CondTerm| {
            if !t.joint().is_empty() {
                *terms.entry(t).or_default() += 1;
            }
        };
        for (i, step) in self.steps.iter().enumerate() {
            let res = match *step {
                ProofStep::Decomposition { joint, cond } => {
                    if !cond.is_subset_of(joint) || cond == joint {
                        return Err(format!("step {i}: malformed decomposition"));
                    }
                    take(&mut terms, CondTerm::new(VarSet::EMPTY, joint)).map(|()| {
                        put(&mut terms, CondTerm::new(VarSet::EMPTY, cond));
                        put(&mut terms, CondTerm::new(cond, joint.difference(cond)));
                    })
                }
                ProofStep::Composition { cond, subj } => {
                    take(&mut terms, CondTerm::new(VarSet::EMPTY, cond))
                        .and_then(|()| take(&mut terms, CondTerm::new(cond, subj)))
                        .map(|()| put(&mut terms, CondTerm::new(VarSet::EMPTY, cond.union(subj))))
                }
                ProofStep::Monotonicity { from, to } => {
                    if !to.is_subset_of(from) {
                        return Err(format!("step {i}: malformed monotonicity"));
                    }
                    take(&mut terms, CondTerm::new(VarSet::EMPTY, from))
                        .map(|()| put(&mut terms, CondTerm::new(VarSet::EMPTY, to)))
                }
                ProofStep::Submodularity { subj, cond_from, cond_to } => {
                    if !cond_from.is_subset_of(cond_to) {
                        return Err(format!("step {i}: malformed submodularity"));
                    }
                    take(&mut terms, CondTerm::new(cond_from, subj))
                        .map(|()| put(&mut terms, CondTerm::new(cond_to, subj.difference(cond_to))))
                }
            };
            res.map_err(|e| format!("step {i} ({step:?}): {e}"))?;
        }
        // Every target must now be present among the unconditional terms.
        for (target, needed) in &self.identity.targets {
            let available = terms.get(&CondTerm::new(VarSet::EMPTY, *target)).copied().unwrap_or(0);
            if available < *needed {
                return Err(format!(
                    "replay produced only {available} of the {needed} required copies of {target:?}"
                ));
            }
        }
        Ok(())
    }

    /// Pretty-prints the whole sequence, one step per line (Table 1 style).
    #[must_use]
    pub fn display_with(&self, names: &[String]) -> String {
        self.steps.iter().map(|s| s.display_with(names)).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::tests::{paper_identity_63, vs};

    #[test]
    fn table1_proof_sequence_for_identity_63() {
        // Reproduces Table 1: the proof sequence for Eq. (62)/(63) consists
        // of 1 decomposition, 2 submodularities and 2 compositions, and
        // replaying it produces both targets h(XYZ) and h(YZW).
        let id = paper_identity_63();
        let seq = ProofSequence::derive(&id).expect("derivation succeeds");
        seq.verify().expect("sequence verifies");
        assert_eq!(seq.len(), 5);
        let (dec, comp, mono, sub) = seq.step_counts();
        assert_eq!((dec, comp, mono, sub), (1, 2, 0, 2));
        // The decomposition splits one of the three input cardinalities on a
        // single shared variable.
        assert!(seq.steps.iter().any(|s| matches!(
            s,
            ProofStep::Decomposition { joint, cond } if joint.len() == 2 && cond.len() == 1
        )));
    }

    #[test]
    fn derived_sequence_prints_in_table1_notation() {
        let id = paper_identity_63();
        let seq = ProofSequence::derive(&id).unwrap();
        let names: Vec<String> = ["X", "Y", "Z", "W"].iter().map(|s| s.to_string()).collect();
        let text = seq.display_with(&names);
        assert!(text.contains("→"));
        assert!(text.lines().count() == 5);
    }

    #[test]
    fn trivial_identity_needs_no_steps() {
        // h(XY) ≤ h(XY): target equals source.
        let mut id = paper_identity_63();
        id.targets.clear();
        id.sources.clear();
        id.witness.clear();
        id.targets.insert(vs(&[0, 1]), 1);
        id.sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[0, 1])), 1);
        id.verify().unwrap();
        let seq = ProofSequence::derive(&id).unwrap();
        assert!(seq.is_empty());
        seq.verify().unwrap();
    }

    #[test]
    fn monotonicity_witnesses_become_projection_steps() {
        // h(X) ≤ h(XY): witnessed by the monotonicity h(XY) ≥ h(X).
        let mut id = paper_identity_63();
        id.targets.clear();
        id.sources.clear();
        id.witness.clear();
        id.targets.insert(vs(&[0]), 1);
        id.sources.insert(CondTerm::new(VarSet::EMPTY, vs(&[0, 1])), 1);
        id.witness
            .insert(panda_entropy::Elemental::Monotone { from: vs(&[0, 1]), to: vs(&[0]) }, 1);
        id.verify().unwrap();
        let seq = ProofSequence::derive(&id).unwrap();
        assert_eq!(seq.len(), 1);
        assert!(matches!(seq.steps[0], ProofStep::Monotonicity { .. }));
    }

    #[test]
    fn lp_extracted_flows_have_verifiable_proof_sequences() {
        // End-to-end: subw LP ⇒ dual ⇒ integral flow ⇒ identity ⇒ proof
        // sequence, for every bag selector of the 4-cycle.
        use panda_entropy::{subw, StatisticsSet};
        use panda_query::parse_query;
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 4096);
        let report = subw(&q, &stats).unwrap();
        assert_eq!(report.per_selector.len(), 4);
        for sel in &report.per_selector {
            let integral = sel.report.flow.to_integral().unwrap();
            let id = TermIdentity::from_flow(&integral);
            id.verify().unwrap();
            let seq = ProofSequence::derive(&id).expect("derivation for every selector");
            seq.verify().unwrap();
            assert!(!seq.is_empty());
        }
    }

    #[test]
    fn broken_sequences_are_rejected() {
        let id = paper_identity_63();
        let mut seq = ProofSequence::derive(&id).unwrap();
        // Tamper: drop the last step ⇒ some target is no longer produced.
        seq.steps.pop();
        assert!(seq.verify().is_err());
        // Tamper: insert a composition whose operands don't exist.
        let mut seq2 = ProofSequence::derive(&id).unwrap();
        seq2.steps.insert(0, ProofStep::Composition { cond: vs(&[0, 3]), subj: vs(&[1]) });
        assert!(seq2.verify().is_err());
    }

    #[test]
    fn fd_flows_produce_sequences_with_fd_terms() {
        // The full 4-cycle with a two-way FD between W and X (the C = 1 case
        // of S_full) has bound 3/2; its proof sequence uses conditional
        // source terms h(X|W), h(W|X) directly.
        use panda_entropy::{polymatroid_bound, StatisticsSet};
        use panda_query::{parse_query, Var, VarSet as VS};
        let q = parse_query("Q(X,Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut stats = StatisticsSet::identical_cardinalities(&q, 4096);
        stats.add_functional_dependency("U", VS::singleton(Var(3)), VS::singleton(Var(0)));
        stats.add_functional_dependency("U", VS::singleton(Var(0)), VS::singleton(Var(3)));
        let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        let id = TermIdentity::from_flow(&report.flow.to_integral().unwrap());
        id.verify().unwrap();
        let seq = ProofSequence::derive(&id).unwrap();
        seq.verify().unwrap();
    }
}
