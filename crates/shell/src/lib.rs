//! `panda-shell`: a REPL and script runner for the PANDA engine.
//!
//! The shell reads a small command language and drives the serving
//! protocol ([`panda_server::protocol`]) against one of two backends:
//!
//! * **embedded** (the default) — an in-process [`panda_server::Session`],
//!   no server required;
//! * **connected** (`--connect <addr>`) — a TCP connection to a running
//!   `panda-server`.
//!
//! Both backends speak the identical protocol through the identical
//! session semantics, so a script replayed against either produces the
//! same transcript byte for byte (CI's serve-replay job diffs exactly
//! that).
//!
//! Input language:
//!
//! * a bare datalog query (`Q(X,Y) :- R(X,Y), S(Y,Z)`) evaluates; it may
//!   span lines — statements are assembled with the resumable
//!   [`panda_query::parse_statement`], `;` always terminates, a complete
//!   single line runs immediately, and a blank line flushes a pending
//!   buffer;
//! * protocol commands pass through verbatim (`EXPLAIN <query>`,
//!   `LOAD R 2` … `END`, `STRATEGY adaptive`, `BUDGET pivots=100`,
//!   `STATS`, `PING`, `CANCEL <id>`, `QUIT`);
//! * metacommands: `\q` quits, `\stats` / `\stats global` show plan-cache
//!   counters, `\strategy [name]`, `\budget <fields>`, `\load <file>` and
//!   `\i <file>` runs a script file.
//!
//! The prompt is printed only when stdin is an interactive terminal, so
//! piped and scripted transcripts stay clean and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

use panda_query::{parse_statement, Parsed};
use panda_server::protocol::{body_lines, parse_request, Command};
use panda_server::session::Session;

/// Where shell input is executed: in-process or over TCP.
pub enum ShellBackend {
    /// An in-process [`Session`] (no server needed).
    Embedded(Box<Session>),
    /// A TCP connection to a `panda-server`.
    Connected(Connection),
}

/// A live protocol connection to a `panda-server`.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    in_load: bool,
}

impl ShellBackend {
    /// An embedded backend over a fresh session.
    #[must_use]
    pub fn embedded() -> ShellBackend {
        ShellBackend::Embedded(Box::new(Session::new()))
    }

    /// Connects to a `panda-server` at `addr` (e.g. `127.0.0.1:4860`).
    pub fn connect(addr: &str) -> io::Result<ShellBackend> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ShellBackend::Connected(Connection {
            reader,
            writer: BufWriter::new(stream),
            in_load: false,
        }))
    }

    /// Sends one protocol line and returns its response lines plus whether
    /// the session ended.  Mirrors the session's framing exactly: lines
    /// that produce no response (blank lines, `LOAD` openers, data rows)
    /// return no lines, everything else returns a header plus the body the
    /// header's `lines=` field announces.
    fn request(&mut self, line: &str) -> io::Result<(Vec<String>, bool)> {
        match self {
            ShellBackend::Embedded(session) => {
                let reply = session.handle_line(line);
                Ok((reply.lines, reply.quit))
            }
            ShellBackend::Connected(conn) => conn.request(line),
        }
    }
}

impl Connection {
    /// Whether the server will answer this line at all — the client-side
    /// mirror of the session's `LOAD` block state machine.
    fn expects_response(&mut self, line: &str) -> bool {
        let trimmed = line.trim();
        if self.in_load {
            if trimmed == "END" {
                self.in_load = false;
                return true;
            }
            // CANCEL stays a command even inside a data block.
            return matches!(parse_request(trimmed),
                Ok(req) if matches!(req.command, Command::Cancel { .. }));
        }
        if trimmed.is_empty() {
            return false;
        }
        if let Ok(req) = parse_request(trimmed) {
            if matches!(req.command, Command::Load { .. }) {
                self.in_load = true;
                return false;
            }
        }
        true
    }

    fn request(&mut self, line: &str) -> io::Result<(Vec<String>, bool)> {
        let expects = self.expects_response(line);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        if !expects {
            return Ok((Vec::new(), false));
        }
        let mut header = String::new();
        if self.reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        let header = header.trim_end_matches(['\r', '\n']).to_string();
        let body = body_lines(&header);
        let quit = header == "OK bye";
        let mut lines = Vec::with_capacity(body + 1);
        lines.push(header);
        for _ in 0..body {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-body",
                ));
            }
            lines.push(line.trim_end_matches(['\r', '\n']).to_string());
        }
        Ok((lines, quit))
    }
}

/// The protocol keywords the shell passes through verbatim.
const PASSTHROUGH: [&str; 11] = [
    "PING", "LOAD", "END", "CLEAR", "QUERY", "EXPLAIN", "STRATEGY", "BUDGET", "STATS", "CANCEL",
    "QUIT",
];

/// The shell: input-language handling over a [`ShellBackend`].
pub struct Shell {
    backend: ShellBackend,
    /// Partial query statement accumulated across lines, `;`-terminated
    /// via [`parse_statement`] (newlines are joined as spaces).
    query_buffer: String,
    /// Mirrors the backend's `LOAD` block state so data rows pass through
    /// instead of being treated as query text.
    in_load: bool,
}

impl Shell {
    /// A shell over the given backend.
    #[must_use]
    pub fn new(backend: ShellBackend) -> Shell {
        Shell { backend, query_buffer: String::new(), in_load: false }
    }

    /// `true` while a multi-line query statement is pending.
    #[must_use]
    pub fn has_pending_input(&self) -> bool {
        self.in_load || !self.query_buffer.trim().is_empty()
    }

    fn send(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let (lines, quit) = self.backend.request(line)?;
        for l in &lines {
            out.write_all(l.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(quit)
    }

    /// Drains every statement [`parse_statement`] finds in the buffer and
    /// runs it as a `QUERY`; malformed statements are sent too so the
    /// session renders its structured `ERR parse_error` (one error path,
    /// identical in every mode).
    fn drain_statements(&mut self, out: &mut impl Write) -> io::Result<bool> {
        loop {
            match parse_statement(&self.query_buffer) {
                Parsed::Statement { consumed, .. } | Parsed::Malformed { consumed, .. } => {
                    let statement: String = self.query_buffer.drain(..consumed).collect();
                    let text = statement.trim().trim_end_matches(';').trim();
                    if !text.is_empty() && self.send(&format!("QUERY {text}"), out)? {
                        return Ok(true);
                    }
                }
                Parsed::Incomplete => return Ok(false),
            }
        }
    }

    fn handle_metacommand(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let (name, args) = match line.find(char::is_whitespace) {
            Some(i) => {
                let (n, a) = line.split_at(i);
                (n, a.trim())
            }
            None => (line, ""),
        };
        match name {
            "\\q" | "\\quit" => self.send("QUIT", out),
            "\\stats" if args == "global" => self.send("STATS GLOBAL", out),
            "\\stats" => self.send("STATS", out),
            "\\strategy" if args.is_empty() => self.send("STRATEGY", out),
            "\\strategy" => self.send(&format!("STRATEGY {args}"), out),
            "\\budget" => self.send(&format!("BUDGET {args}"), out),
            "\\i" | "\\load" => {
                if args.is_empty() {
                    writeln!(out, "ERR malformed_request {name} needs a file path")?;
                    return Ok(false);
                }
                match std::fs::read_to_string(args) {
                    Ok(script) => self.run_script(&script, out),
                    Err(e) => {
                        writeln!(out, "ERR malformed_request cannot read `{args}`: {e}")?;
                        Ok(false)
                    }
                }
            }
            other => {
                writeln!(out, "ERR unknown_command unknown metacommand `{other}`")?;
                Ok(false)
            }
        }
    }

    /// Processes one input line, writing any responses to `out`.  Returns
    /// `true` when the session ended (`\q` / `QUIT`).
    pub fn process_line(&mut self, raw: &str, out: &mut impl Write) -> io::Result<bool> {
        let line = raw.trim_end_matches(['\r', '\n']);
        if self.in_load {
            if line.trim() == "END" {
                self.in_load = false;
            }
            return self.send(line, out);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // A blank line flushes a pending query buffer (the escape
            // hatch for a statement the user decides not to finish).
            if !self.query_buffer.trim().is_empty() {
                self.query_buffer.push(';');
                return self.drain_statements(out);
            }
            return Ok(false);
        }
        if let Some(meta) = trimmed.strip_prefix('\\') {
            let _ = meta; // (documented spelling keeps the backslash)
            return self.handle_metacommand(trimmed, out);
        }
        let keyword = trimmed.split_whitespace().next().unwrap_or_default();
        if PASSTHROUGH.contains(&keyword) {
            if keyword == "LOAD" && parse_request(trimmed).is_ok() {
                self.in_load = true;
            }
            return self.send(trimmed, out);
        }
        // Query text: join continuation lines with spaces so `;` (or a
        // line that already parses) is what completes a statement.
        self.query_buffer.push_str(line);
        self.query_buffer.push(' ');
        if self.drain_statements(out)? {
            return Ok(true);
        }
        // No `;` yet — accept a line that already forms a complete query.
        let pending = self.query_buffer.trim().to_string();
        if !pending.is_empty() && panda_query::parse_query(&pending).is_ok() {
            self.query_buffer.clear();
            return self.send(&format!("QUERY {pending}"), out);
        }
        Ok(false)
    }

    /// Runs a whole script (the `\i` / `--script` path).  Returns `true`
    /// when the script ended the session.
    pub fn run_script(&mut self, script: &str, out: &mut impl Write) -> io::Result<bool> {
        for line in script.lines() {
            if self.process_line(line, out)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The interactive loop: reads `input` to EOF (or `\q`), writing
    /// responses — and, when `prompt` is set, a `panda>` prompt — to
    /// `out`.
    pub fn repl(
        &mut self,
        input: &mut impl BufRead,
        out: &mut impl Write,
        prompt: bool,
    ) -> io::Result<()> {
        let mut line = String::new();
        loop {
            if prompt {
                let p = if self.has_pending_input() { "  ...> " } else { "panda> " };
                out.write_all(p.as_bytes())?;
                out.flush()?;
            }
            line.clear();
            if input.read_line(&mut line)? == 0 {
                return out.flush();
            }
            if self.process_line(&line, out)? {
                return out.flush();
            }
            out.flush()?;
        }
    }
}

/// Reads a whole stream to a string (helper for `--script -`).
pub fn read_all(mut input: impl Read) -> io::Result<String> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_embedded(script: &str) -> String {
        let mut shell = Shell::new(ShellBackend::embedded());
        let mut out = Vec::new();
        shell.run_script(script, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn queries_and_passthrough_commands_share_one_transcript() {
        let transcript = run_embedded("LOAD R 2\n1 2\n2 3\nEND\nPING\nQ(A,B) :- R(A,B)\nSTATS\n");
        // The stats line's exact counters depend on the process-wide plan
        // cache shared with concurrently running tests; assert its shape.
        let (head, stats) = transcript.split_at(transcript.find("OK stats").unwrap_or_default());
        assert_eq!(
            head,
            "OK loaded rel=R rows=2\nOK pong\nOK rows n=2 vars=A,B lines=2\n1 2\n2 3\n"
        );
        assert!(stats.starts_with("OK stats hits="), "{stats}");
    }

    #[test]
    fn multi_line_statements_assemble_and_semicolons_split() {
        let transcript = run_embedded("LOAD R 2\n1 2\nEND\nQ(A,B) :-\nR(A,B);Q2() :- R(A,B);\n");
        assert_eq!(
            transcript,
            "OK loaded rel=R rows=1\nOK rows n=1 vars=A,B lines=1\n1 2\n\
             OK rows n=1 vars=() lines=1\ntrue\n"
        );
    }

    #[test]
    fn a_blank_line_flushes_a_pending_statement() {
        let transcript = run_embedded("Q(A,B) :- R(A,B,\n\n");
        assert!(transcript.starts_with("ERR parse_error"), "{transcript}");
    }

    #[test]
    fn metacommands_map_to_protocol_requests() {
        let transcript = run_embedded("\\strategy binary-join\n\\budget pivots=9\n\\stats\n");
        assert_eq!(
            transcript,
            "OK strategy=binary-join\nOK budgets pivots=9 branches=none rows=none\n\
             OK stats hits=0 misses=0 evictions=0 bypasses=0\n"
        );
        let transcript = run_embedded("\\frobnicate\n");
        assert!(transcript.starts_with("ERR unknown_command"), "{transcript}");
    }

    #[test]
    fn quit_ends_the_script() {
        let mut shell = Shell::new(ShellBackend::embedded());
        let mut out = Vec::new();
        let quit = shell.run_script("\\q\nPING\n", &mut out).unwrap();
        assert!(quit);
        assert_eq!(String::from_utf8(out).unwrap(), "OK bye\n");
    }
}
