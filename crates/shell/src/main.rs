//! The `panda-shell` binary.
//!
//! ```text
//! panda-shell                         # embedded engine, interactive REPL
//! panda-shell --connect 127.0.0.1:4860  # drive a running panda-server
//! panda-shell --script session.panda  # replay a script, print transcript
//! ```

#![forbid(unsafe_code)]

use std::io::{self, BufRead, IsTerminal, Write};
use std::process::ExitCode;

use panda_shell::{Shell, ShellBackend};

const USAGE: &str = "usage: panda-shell [--connect <addr>] [--script <file>]";

fn run() -> io::Result<ExitCode> {
    let mut connect: Option<String> = None;
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("--connect needs an address\n{USAGE}");
                    return Ok(ExitCode::FAILURE);
                }
            },
            "--script" => match args.next() {
                Some(path) => script = Some(path),
                None => {
                    eprintln!("--script needs a file\n{USAGE}");
                    return Ok(ExitCode::FAILURE);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    let backend = match &connect {
        Some(addr) => ShellBackend::connect(addr)?,
        None => ShellBackend::embedded(),
    };
    let mut shell = Shell::new(backend);
    let stdout = io::stdout();
    let mut out = stdout.lock();
    if let Some(path) = script {
        let text = if path == "-" {
            panda_shell::read_all(io::stdin().lock())?
        } else {
            std::fs::read_to_string(&path)?
        };
        shell.run_script(&text, &mut out)?;
        out.flush()?;
        return Ok(ExitCode::SUCCESS);
    }
    let stdin = io::stdin();
    let prompt = stdin.is_terminal();
    let mut input = stdin.lock();
    // `BufRead` for a locked stdin; the REPL reads to EOF or `\q`.
    let mut reader = &mut input as &mut dyn BufRead;
    shell.repl(&mut reader, &mut out, prompt)?;
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("panda-shell: {e}");
            ExitCode::FAILURE
        }
    }
}
