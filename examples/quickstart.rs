//! Quickstart: parse a query, look at its widths, and evaluate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use panda::prelude::*;

fn main() {
    // The paper's running example (Eq. 2): the projected 4-cycle query.
    let query = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    println!("query: {query}");

    // Its information-theoretic widths under identical cardinality
    // constraints S□ (Eq. 23).
    let stats = StatisticsSet::identical_cardinalities(&query, 1_000_000);
    let fhtw_report = fhtw(&query, &stats).unwrap();
    let subw_report = subw(&query, &stats).unwrap();
    println!("fractional hypertree width = {}", fhtw_report.value);
    println!("submodular width           = {}", subw_report.value);
    println!(
        "⇒ an adaptive plan is asymptotically better (N^{} vs N^{}).",
        subw_report.value, fhtw_report.value
    );

    // The Shannon-flow certificate of the hardest DDR, the inequality the
    // query plan is derived from (Eq. 55).
    let hardest = subw_report.hardest();
    println!(
        "hardest bag selector certificate: {}",
        hardest.report.flow.display_with(query.var_names())
    );

    // Evaluate the query on the example instance of Figure 2.
    let db = panda::workloads::figure2_db();
    let panda = Panda::new(query.clone());
    let report = panda.plan_report(&db).unwrap();
    println!("chosen strategy: {:?}", report.strategy);
    let answer = panda.evaluate(&db);
    println!("answer over (X, Y):");
    for row in answer.rel.canonical_rows() {
        println!("  {row:?}");
    }
}
