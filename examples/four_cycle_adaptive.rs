//! The paper's headline scenario: on the "double star" instance every
//! single-tree-decomposition plan materialises Ω(N²) intermediate tuples,
//! while the adaptive (submodular-width) plan partitions one relation by
//! degree and finishes in ~N^{3/2}.
//!
//! ```text
//! cargo run --release --example four_cycle_adaptive
//! ```

use std::time::Instant;

use panda::core::{BinaryJoinPlan, PandaEvaluator, StaticTdPlan};
use panda::workloads::{double_star_db, four_cycle_projected, s_square_statistics};

fn main() {
    let query = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);

    let adaptive = PandaEvaluator::plan(&query, &stats).expect("planning succeeds");
    let static_plan = StaticTdPlan::best_for(&query, &stats).expect("planning succeeds");
    println!("tree decompositions: {}", adaptive.tds.len());
    for spec in &adaptive.partitions {
        println!(
            "proof-sequence partition: relation {} by degree of {:?} given {:?}",
            spec.relation, spec.value_vars, spec.group_vars
        );
    }

    println!(
        "\n{:>8} {:>10} {:>14} {:>14} {:>14}",
        "N", "|output|", "adaptive", "static TD", "binary joins"
    );
    for half in [256u64, 512, 1024, 2048] {
        let db = double_star_db(half);
        let n = db.relation("R").unwrap().len();

        let t = Instant::now();
        let a = adaptive.evaluate(&query, &db);
        let adaptive_time = t.elapsed();

        let t = Instant::now();
        let s = static_plan.evaluate(&query, &db);
        let static_time = t.elapsed();

        let t = Instant::now();
        let b = BinaryJoinPlan::new().evaluate(&query, &db);
        let binary_time = t.elapsed();

        assert_eq!(a.rel.canonical_rows(), s.rel.canonical_rows());
        assert_eq!(a.rel.canonical_rows(), b.rel.canonical_rows());
        println!(
            "{:>8} {:>10} {:>12.1?} {:>12.1?} {:>12.1?}",
            n,
            a.len(),
            adaptive_time,
            static_time,
            binary_time
        );
    }
    println!("\nThe adaptive plan's advantage grows with N: it is the O(N^subw) = O(N^1.5)");
    println!("behaviour of PANDA, versus the Ω(N²) of any single tree decomposition.");
}
