//! FAQ-style analytics over semirings (Section 9.1 of the paper): the same
//! conjunctive body answers counting, reachability and minimum-weight
//! questions by switching the semiring.
//!
//! ```text
//! cargo run --release --example semiring_analytics
//! ```

use panda::core::faq;
use panda::prelude::*;
use panda::workloads::{erdos_renyi_db, four_cycle_boolean, path_instance};

fn main() {
    // An acyclic "supply chain": supplier → warehouse → store → customer.
    let chain = parse_query("Q() :- R(A,B), S(B,C), T(C,D)").unwrap();
    let db = path_instance(5_000, 5, 1);
    println!("acyclic chain body: {chain}");
    println!("  input tuples          = {}", db.total_tuples());
    println!("  #assignments (ℕ,+,×)  = {}", faq::count_assignments(&chain, &db));
    println!("  satisfiable (𝔹,∨,∧)   = {}", faq::is_satisfiable(&chain, &db));
    // Minimum total "shipping cost" where each hop (a, b) costs |a − b| mod 17.
    let cost = |_: &str, row: &[u64]| (row[0].abs_diff(row[1]) % 17) as i64;
    println!("  min total cost (min,+) = {:?}", faq::min_weight(&chain, &db, &cost));

    // The cyclic 4-cycle body: counting uses a single tree decomposition
    // because the counting semiring is not idempotent (the paper's open
    // problem), while Boolean/min-plus can use the adaptive machinery.
    let cycle = four_cycle_boolean();
    let graph = erdos_renyi_db(&["R", "S", "T", "U"], 80, 900, 3);
    println!("\ncyclic body: {cycle}");
    println!("  #4-cycle assignments   = {}", faq::count_assignments(&cycle, &graph));
    println!("  any 4-cycle at all     = {}", faq::is_satisfiable(&cycle, &graph));
    println!(
        "  lightest 4-cycle       = {:?}",
        faq::min_weight(&cycle, &graph, &|_, row| (row[0] + row[1]) as i64)
    );
}
