//! EXPLAIN: observable strategy selection, reason codes, and budget
//! downgrades.
//!
//! ```text
//! cargo run --release --example explain
//! ```
//!
//! The output is **deterministic and byte-stable**: CI runs this example
//! twice and diffs the two outputs, so every line printed here must come
//! from the deterministic planner (no clocks, no addresses, no hash-map
//! iteration order).

use panda::prelude::*;

fn main() {
    // 1. A free-connex acyclic query: the acyclic fast path fires and no
    //    LP is ever solved.
    let query = parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap();
    let mut db = Database::new();
    db.insert("R", panda::relation::Relation::from_rows(2, vec![[1, 2], [3, 4]]));
    db.insert("S", panda::relation::Relation::from_rows(2, vec![[2, 5], [4, 6]]));
    println!("== acyclic fast path ==");
    print!("{}", Panda::new(query).explain(&db).unwrap());

    // 2. The paper's projected 4-cycle under identical cardinalities:
    //    subw = 3/2 < 2 = fhtw, so the gap rule picks the adaptive plan
    //    and every bag selector's bound is certified by a Shannon flow.
    let query = panda::workloads::four_cycle_projected();
    let stats = StatisticsSet::identical_cardinalities(&query, 1 << 12);
    let db = panda::workloads::double_star_db(16);
    println!();
    println!("== subw/fhtw gap: the adaptive plan ==");
    print!("{}", Panda::new(query.clone()).with_statistics(stats.clone()).explain(&db).unwrap());

    // 3. The same query under a starvation-level LP pivot budget: the
    //    budget dies during the subw computation, and the selection
    //    fail-soft downgrades to the single-TD plan fhtw already paid for.
    //    The pivot threshold is measured (not hard-coded) so the output
    //    stays stable across solver changes.
    let tds = TreeDecomposition::enumerate(&query);
    let mut probe = panda::entropy::PivotBudget::new(u64::MAX);
    panda::entropy::fhtw_with_tds_budgeted(&query, &tds, &stats, &mut probe).unwrap();
    let budgets = Budgets::unlimited().with_lp_pivot_budget(probe.used() + 1);
    println!();
    println!("== LP budget exhausted mid-subw: fail-soft downgrade ==");
    print!(
        "{}",
        Panda::new(query.clone())
            .with_statistics(stats.clone())
            .with_budgets(budgets)
            .explain(&db)
            .unwrap()
    );

    // 4. A branch budget of 1 on a skewed instance: the adaptive plan's
    //    degree branches cannot fit, so execution downgrades to the
    //    binary-join baseline (and says so).
    let budgets = Budgets::unlimited().with_branch_budget(1);
    println!();
    println!("== branch budget exceeded: downgrade to binary join ==");
    print!(
        "{}",
        Panda::new(query.clone())
            .with_statistics(stats)
            .with_budgets(budgets)
            .explain(&db)
            .unwrap()
    );

    // Whatever the budgets forced, the answers are identical.
    let reference = Panda::new(query.clone()).evaluate(&db);
    let downgraded = Panda::new(query.clone()).with_budgets(budgets).evaluate(&db);
    let order = query.free_vars().to_vec();
    assert_eq!(downgraded.canonical_rows_ordered(&order), reference.canonical_rows_ordered(&order),);
    println!();
    println!(
        "downgraded and reference plans agree on all {} output rows",
        reference.canonical_rows_ordered(&order).len()
    );
}
