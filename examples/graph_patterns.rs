//! Graph pattern matching with worst-case-optimal joins: triangles and
//! 4-cycles on random and skewed graphs, with their AGM bounds.
//!
//! ```text
//! cargo run --release --example graph_patterns
//! ```

use std::time::Instant;

use panda::core::{BinaryJoinPlan, GenericJoin};
use panda::prelude::*;
use panda::workloads::{erdos_renyi_db, triangle_query, zipf_graph_db};

fn main() {
    let triangle = triangle_query();
    println!("query: {triangle}");

    for (label, db) in [
        ("Erdős–Rényi graph", erdos_renyi_db(&["R", "S", "T"], 500, 5_000, 42)),
        ("Zipf-skewed graph", zipf_graph_db(&["R", "S", "T"], 500, 5_000, 1.2, 42)),
    ] {
        let n = db.relation("R").unwrap().len() as u64;
        let bound = agm_bound(&triangle, &[("R", n), ("S", n), ("T", n)], n).unwrap();

        let t = Instant::now();
        let wcoj = GenericJoin::evaluate(&triangle, &db);
        let wcoj_time = t.elapsed();

        let t = Instant::now();
        let binary = BinaryJoinPlan::new().evaluate(&triangle, &db);
        let binary_time = t.elapsed();
        assert_eq!(wcoj.rel.canonical_rows(), binary.rel.canonical_rows());

        println!("\n{label}: N = {n}");
        println!(
            "  AGM bound             = N^{} ≈ {:.0} tuples",
            bound.log_bound,
            bound.tuple_bound()
        );
        println!("  triangles found       = {}", wcoj.len());
        println!("  worst-case optimal    = {wcoj_time:.1?}");
        println!("  binary join baseline  = {binary_time:.1?}");
    }

    // A projected pattern: which edges lie on a 4-cycle?
    let four_cycle = parse_query("OnCycle(X,Y) :- R(X,Y), R(Y,Z), R(Z,W), R(W,X)").unwrap();
    let db = erdos_renyi_db(&["R"], 200, 1_500, 7);
    let panda = Panda::new(four_cycle);
    let answer = panda.evaluate(&db);
    println!("\nedges lying on a directed 4-cycle (self-join pattern): {}", answer.len());
}
