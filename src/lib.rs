//! # panda — information-theoretic query optimization and evaluation
//!
//! `panda` is a from-scratch Rust implementation of the **PANDA**
//! framework described in *"Query Optimization and Evaluation via
//! Information Theory: A Tutorial"* (Abo Khamis, Ngo, Suciu; PODS 2026):
//! worst-case cardinality bounds from information theory (the AGM and
//! polymatroid bounds), the width measures built on them (fractional
//! hypertree width, submodular width, ω-submodular width), Shannon-flow
//! inequalities with machine-checked proof sequences, and query evaluation
//! algorithms — static single-tree-decomposition plans, adaptive
//! multi-decomposition plans with degree-based data partitioning,
//! worst-case-optimal joins, Yannakakis, and semiring aggregates.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`rational`] | `panda-rational` | exact rational arithmetic |
//! | [`lp`] | `panda-lp` | exact simplex LP solver with duals |
//! | [`relation`] | `panda-relation` | relations, operators, degree statistics, semirings |
//! | [`query`] | `panda-query` | CQs, hypergraphs, tree decompositions, DDRs |
//! | [`entropy`] | `panda-entropy` | degree/ℓ_p constraints, polymatroid bounds, fhtw, subw, Shannon flows |
//! | [`proof`] | `panda-proof` | proof sequences and the Reset Lemma |
//! | [`core`] | `panda-core` | the evaluators: WCOJ, Yannakakis, static and adaptive plans, DDRs, FAQ |
//! | [`fmm`] | `panda-fmm` | Boolean/counting matrix multiplication, FMM-based detection |
//! | [`workloads`] | `panda-workloads` | the paper's instances and random workload generators |
//!
//! Two workspace-level documents complement the rustdoc: [`docs/ARCHITECTURE.md`]
//! (crate dependency map, execution flow, paper-section → module table) and
//! [`docs/NOTATION.md`] (a glossary from the paper's notation — subw, fhtw,
//! Γ_n, DDRs, heavy/light, AGM — to the types implementing each).
//!
//! [`docs/ARCHITECTURE.md`]: https://github.com/panda-rs/panda/blob/main/docs/ARCHITECTURE.md
//! [`docs/NOTATION.md`]: https://github.com/panda-rs/panda/blob/main/docs/NOTATION.md
//!
//! Evaluation is sequential by default; the [`config`] module (re-exported
//! from `panda-core`) holds the opt-in [`config::Engine`] /
//! [`config::Parallelism`] knob and the `PANDA_THREADS` environment
//! toggle.  Parallel execution is deterministic: outputs are bit-identical
//! to sequential at any thread count.
//!
//! # Quickstart
//!
//! ```
//! use panda::prelude::*;
//!
//! // The paper's running example: the projected 4-cycle query (Eq. 2).
//! let query = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
//!
//! // Its widths under identical cardinality constraints (Eq. 23):
//! let stats = StatisticsSet::identical_cardinalities(&query, 1_000_000);
//! assert_eq!(fhtw(&query, &stats).unwrap().value, Rat::from_int(2));
//! assert_eq!(subw(&query, &stats).unwrap().value, Rat::new(3, 2));
//!
//! // Evaluate it on the example instance of Figure 2.
//! let db = panda::workloads::figure2_db();
//! let answer = Panda::new(query).evaluate(&db);
//! assert_eq!(answer.len(), 2); // (1,p) and (1,q) extend to 4-cycles
//! ```

#![forbid(unsafe_code)]
pub use panda_core as core;
pub use panda_core::config;
pub use panda_entropy as entropy;
pub use panda_fmm as fmm;
pub use panda_lp as lp;
pub use panda_proof as proof;
pub use panda_query as query;
pub use panda_rational as rational;
pub use panda_relation as relation;
pub use panda_server as server;
pub use panda_shell as shell;
pub use panda_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use panda_core::{
        canonicalize_query, plan_cache_clear, plan_cache_stats, BinaryJoinPlan, BranchBound,
        Budgets, CancelToken, CanonicalQuery, DdrEvaluator, Downgrade, Engine, EvaluationStrategy,
        Explain, GenericJoin, MaterializedSubplan, Panda, PandaEvaluator, Parallelism,
        PlanCacheStats, PlanReport, ReasonCode, SelectorRule, StaticTdPlan, StrategyError,
        VarRelation,
    };
    pub use panda_entropy::{
        agm_bound, ddr_polymatroid_bound, fhtw, polymatroid_bound, subw, ShannonFlow, Statistic,
        StatisticsSet,
    };
    pub use panda_proof::{ProofSequence, ProofStep, TermIdentity};
    pub use panda_query::{
        parse_query, parse_statement, Atom, BagSelector, ConjunctiveQuery, DisjunctiveRule, Parsed,
        TreeDecomposition, Var, VarSet,
    };
    pub use panda_rational::Rat;
    pub use panda_relation::{Database, Relation};
}
