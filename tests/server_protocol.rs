//! Protocol conformance: golden request/response transcripts for every
//! command, error, downgrade and cancellation path of `panda-server`.
//!
//! Transcripts are asserted byte for byte, and this binary runs in the CI
//! build-test matrix (PANDA_THREADS × PANDA_LAYOUT) and in the
//! plan-cache-off job, so the goldens are pinned across engines, layouts,
//! thread counts and cache modes.  Responses never encode the engine, so
//! one golden serves every matrix cell; the only cache-mode-dependent
//! response (`STATS`) branches on [`plan_cache_enabled`] explicitly.
//!
//! Relation names are unique per test: the plan cache is process-wide and
//! the tests run concurrently, so distinct cache keys are what keep each
//! test's hit/miss accounting deterministic.

use panda::core::plan_cache_enabled;
use panda::prelude::*;
use panda::server::session::Session;
use panda::server::{body_lines, Reply};

/// Runs a scripted session line by line, collecting all response lines and
/// asserting the framing invariant (`lines=` announces the body exactly).
fn transcript(lines: &[&str]) -> Vec<String> {
    let mut session = Session::new();
    let mut out = Vec::new();
    for line in lines {
        let reply = session.handle_line(line);
        check_framing(&reply);
        out.extend(reply.lines);
    }
    out
}

fn check_framing(reply: &Reply) {
    if let Some(header) = reply.lines.first() {
        assert!(
            header.starts_with("OK") || header.starts_with("ERR"),
            "header must start with OK/ERR: {header}"
        );
        assert_eq!(
            body_lines(header),
            reply.lines.len() - 1,
            "lines= must announce the body exactly: {:?}",
            reply.lines
        );
    }
}

#[test]
fn golden_basic_commands() {
    assert_eq!(
        transcript(&["PING", "CLEAR", "STRATEGY", "STRATEGY adaptive", "STRATEGY"]),
        vec![
            "OK pong",
            "OK cleared",
            "OK strategy=auto",
            "OK strategy=adaptive",
            "OK strategy=adaptive",
        ]
    );
}

#[test]
fn golden_budget_state_machine() {
    assert_eq!(
        transcript(&[
            "BUDGET",
            "BUDGET pivots=100 branches=4 rows=1000000",
            "BUDGET branches=none",
            "BUDGET",
        ]),
        vec![
            "OK budgets pivots=none branches=none rows=none",
            "OK budgets pivots=100 branches=4 rows=1000000",
            "OK budgets pivots=100 branches=none rows=1000000",
            "OK budgets pivots=100 branches=none rows=1000000",
        ]
    );
}

#[test]
fn golden_load_query_rows() {
    assert_eq!(
        transcript(&[
            "LOAD PaR 2",
            "1 2",
            "2 3",
            "1 2", // duplicate: deduped on END
            "END",
            "LOAD PaS 2",
            "2 10",
            "3 11",
            "END",
            "QUERY Q(A,C) :- PaR(A,B), PaS(B,C)",
            // Rows are rendered in canonical variable order, independent of
            // the head's syntactic order — same bytes for Q(C,A).
            "QUERY Q(C,A) :- PaR(A,B), PaS(B,C)",
        ]),
        vec![
            "OK loaded rel=PaR rows=2",
            "OK loaded rel=PaS rows=2",
            "OK rows n=2 vars=A,C lines=2",
            "1 10",
            "2 11",
            "OK rows n=2 vars=A,C lines=2",
            "1 10",
            "2 11",
        ]
    );
}

#[test]
fn golden_boolean_queries() {
    assert_eq!(
        transcript(&[
            "LOAD PbE 2",
            "1 2",
            "2 3",
            "1 3",
            "END",
            "QUERY Tri() :- PbE(A,B), PbE(B,C), PbE(A,C)",
            "QUERY Q() :- PbE(X,X)",
        ]),
        vec![
            "OK loaded rel=PbE rows=3",
            "OK rows n=1 vars=() lines=1",
            "true",
            "OK rows n=0 vars=() lines=1",
            "false",
        ]
    );
}

#[test]
fn golden_error_responses() {
    assert_eq!(
        transcript(&[
            "FROBNICATE",
            "#x PING",
            "LOAD bad-name 2",
            "LOAD PcR 0",
            "BUDGET pivots=soon",
            "STATS SOMETIMES",
            "CANCEL tomorrow",
            "END",
            "QUERY Q(A)",
            "QUERY Q(A) :- R(A",
        ]),
        vec![
            "ERR unknown_command unknown command `FROBNICATE`",
            "ERR malformed_request request tag `#x` is not an integer",
            "ERR malformed_request invalid relation name `bad-name`",
            "ERR malformed_request invalid arity `0` (want 1..=32)",
            "ERR malformed_request budget value `soon` is neither an integer nor `none`",
            "ERR malformed_request unknown STATS argument `SOMETIMES`",
            "ERR malformed_request CANCEL needs an integer id, got `tomorrow`",
            "ERR malformed_request END outside a LOAD block",
            "ERR parse_error query parse error: missing `:-` separator",
            "ERR parse_error query parse error: expected `)` at the end of `R(A`",
        ]
    );
}

#[test]
fn golden_load_error_poisons_and_discards() {
    assert_eq!(
        transcript(&["LOAD PdR 2", "1 2", "1 nope", "3 4 5", "END", "QUERY Q(A,B) :- PdR(A,B)",]),
        vec![
            "ERR load_error non-integer value `nope` in LOAD PdR",
            // The block was discarded, so the query sees no relation — an
            // unknown relation binds as empty.
            "OK rows n=0 vars=A,B lines=0",
        ]
    );
}

#[test]
fn golden_strategy_errors() {
    assert_eq!(
        transcript(&[
            "LOAD PeR 2",
            "1 2",
            "2 1",
            "END",
            "STRATEGY yannakakis",
            "QUERY Tri() :- PeR(A,B), PeR(B,C), PeR(C,A)",
        ]),
        vec![
            "OK loaded rel=PeR rows=2",
            "OK strategy=yannakakis",
            "ERR cyclic_yannakakis Yannakakis requires an acyclic query",
        ]
    );
}

#[test]
fn golden_budget_exceeded_under_explicit_strategy() {
    assert_eq!(
        transcript(&[
            "LOAD PfR 2",
            "1 2",
            "END",
            "LOAD PfS 2",
            "2 3",
            "END",
            "LOAD PfT 2",
            "3 4",
            "END",
            "LOAD PfU 2",
            "4 1",
            "END",
            "STRATEGY adaptive",
            "BUDGET pivots=1",
            "QUERY Q(X,Y) :- PfR(X,Y), PfS(Y,Z), PfT(Z,W), PfU(W,X)",
        ]),
        vec![
            "OK loaded rel=PfR rows=1",
            "OK loaded rel=PfS rows=1",
            "OK loaded rel=PfT rows=1",
            "OK loaded rel=PfU rows=1",
            "OK strategy=adaptive",
            "OK budgets pivots=1 branches=none rows=none",
            "ERR budget_exceeded reason=lp_budget_exhausted budget exceeded \
             (lp_budget_exhausted) while planning adaptive, which has no fallback \
             (Auto downgrades fail-soft instead)",
        ]
    );
}

#[test]
fn golden_downgrade_appears_in_explain() {
    // Under Auto the same exhausted pivot budget downgrades fail-soft: the
    // wire EXPLAIN records the lp_budget_exhausted reason and the
    // generic-join fallback, byte for byte.
    assert_eq!(
        transcript(&[
            "LOAD PgR 2",
            "1 2",
            "END",
            "LOAD PgS 2",
            "2 3",
            "END",
            "LOAD PgT 2",
            "3 4",
            "END",
            "LOAD PgU 2",
            "4 1",
            "END",
            "BUDGET pivots=1",
            "EXPLAIN Q(X,Y) :- PgR(X,Y), PgS(Y,Z), PgT(Z,W), PgU(W,X)",
        ]),
        vec![
            "OK loaded rel=PgR rows=1",
            "OK loaded rel=PgS rows=1",
            "OK loaded rel=PgT rows=1",
            "OK loaded rel=PgU rows=1",
            "OK budgets pivots=1 branches=none rows=none",
            "OK explain lines=9",
            "query: Q(X,Y) :- PgR(X,Y), PgS(Y,Z), PgT(Z,W), PgU(W,X)",
            "strategy: generic-join",
            "selected: generic-join",
            "rule: generic-default",
            "reason: lp_budget_exhausted",
            "widths: (not computed)",
            "branches: 1",
            "lp pivots used: 1",
            "downgrades: (none)",
        ]
    );
}

#[test]
fn golden_cancellation_lifecycle() {
    assert_eq!(
        transcript(&[
            "LOAD PhR 2",
            "1 2",
            "END",
            "CANCEL 7",
            "#7 QUERY Q(A,B) :- PhR(A,B)",
            "CANCEL 7",
            "#8 QUERY Q(A,B) :- PhR(A,B)",
            "CANCEL 8",
        ]),
        vec![
            "OK loaded rel=PhR rows=1",
            "OK cancel id=7 state=pending",
            "ERR cancelled request #7 was cancelled before it started",
            "OK cancel id=7 state=done",
            "OK rows n=1 vars=A,B lines=1",
            "1 2",
            "OK cancel id=8 state=done",
        ]
    );
}

#[test]
fn golden_quit() {
    let mut session = Session::new();
    let reply = session.handle_line("QUIT");
    assert_eq!(reply.lines, vec!["OK bye"]);
    assert!(reply.quit);
}

#[test]
fn stats_account_the_sessions_own_cache_traffic() {
    // Unique relation names give this test its own plan-cache keys, so
    // the second identical query is deterministically a hit (cache on) or
    // a bypass (PANDA_PLAN_CACHE=off) — the explicit branch below is what
    // keeps this golden valid in the CI plan-cache-off job.
    let out = transcript(&[
        "LOAD PiR 2",
        "1 2",
        "END",
        "LOAD PiS 2",
        "2 3",
        "END",
        "QUERY Q(X,Z) :- PiR(X,Y), PiS(Y,Z)",
        "QUERY Q(X,Z) :- PiR(X,Y), PiS(Y,Z)",
        "STATS",
    ]);
    let stats = out.last().cloned().unwrap_or_default();
    if plan_cache_enabled() {
        assert_eq!(stats, "OK stats hits=1 misses=1 evictions=0 bypasses=0");
    } else {
        assert_eq!(stats, "OK stats hits=0 misses=0 evictions=0 bypasses=2");
    }
    let global = transcript(&["STATS GLOBAL"]);
    assert_eq!(global.len(), 1);
    assert!(global[0].starts_with("OK stats-global hits="), "{global:?}");
}

#[test]
fn wire_explain_is_byte_identical_to_the_library_path() {
    // The acceptance criterion of the serving layer: EXPLAIN over the wire
    // is the identical bytes of `Panda::explain`, for an acyclic query, a
    // static plan and the adaptive 4-cycle.
    let mut db = Database::new();
    db.insert("PjR", Relation::from_rows(2, vec![[1, 2], [2, 3], [3, 1]]));
    db.insert("PjS", Relation::from_rows(2, vec![[2, 4], [3, 5]]));
    db.insert("PjT", Relation::from_rows(2, vec![[4, 6], [5, 6]]));
    db.insert("PjU", Relation::from_rows(2, vec![[6, 1]]));

    let mut session = Session::new();
    let mut load = Vec::new();
    for name in db.relation_names() {
        let rel = db.relation(&name).unwrap();
        load.push(format!("LOAD {name} {}", rel.arity()));
        for row in rel.canonical_rows() {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            load.push(cells.join(" "));
        }
        load.push("END".to_string());
    }
    for line in &load {
        session.handle_line(line);
    }

    for text in [
        "Q(A,B) :- PjR(A,B), PjS(B,C)",
        "Q(A,C) :- PjR(A,B), PjS(B,C)",
        "Q(X,Y) :- PjR(X,Y), PjS(Y,Z), PjT(Z,W), PjU(W,X)",
        "Q() :- PjR(A,B), PjR(B,C), PjR(C,A)",
    ] {
        let reply = session.handle_line(&format!("EXPLAIN {text}"));
        check_framing(&reply);
        let wire_body = reply.lines[1..].join("\n");
        let library = Panda::new(parse_query(text).unwrap()).explain(&db).unwrap().to_string();
        assert_eq!(wire_body, library.trim_end_matches('\n'), "EXPLAIN diverges for {text}");
    }
}

#[test]
fn transcripts_are_identical_on_a_warm_rerun() {
    // Replaying the same script in a fresh session must give the same
    // bytes even though the process-wide plan cache is now warm — row
    // output and EXPLAIN never depend on cache state.
    let script = [
        "LOAD PkR 2",
        "1 2",
        "2 3",
        "3 4",
        "END",
        "LOAD PkS 2",
        "2 5",
        "3 6",
        "END",
        "QUERY Q(A,C) :- PkR(A,B), PkS(B,C)",
        "EXPLAIN Q(A,C) :- PkR(A,B), PkS(B,C)",
        "STRATEGY generic-join",
        "QUERY Q(A,C) :- PkR(A,B), PkS(B,C)",
    ];
    let cold = transcript(&script);
    let warm = transcript(&script);
    assert_eq!(cold, warm);
}
