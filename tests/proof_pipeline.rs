//! Integration tests for the bound → Shannon flow → proof sequence → plan
//! pipeline (Sections 6–8 of the paper), across several queries.

use panda::prelude::*;
use panda::proof::reset_drop_source;
use panda::workloads::{four_cycle_projected, s_square_statistics};

/// Every bag selector of every query below must yield: an exact DDR bound,
/// a verifying Shannon flow, an integral identity, and a replayable proof
/// sequence.
#[test]
fn proof_sequences_exist_for_many_queries() {
    let cases = [
        ("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)", 4u64),
        ("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)", 3),
        ("Q() :- R(A,B), S(B,C), T(C,D), U(D,A)", 4),
        ("P(A,B,C) :- R(A,B), S(B,C)", 2),
        ("Five() :- E1(A,B), E2(B,C), E3(C,D), E4(D,F), E5(F,A)", 5),
    ];
    for (text, _arity) in cases {
        let q = parse_query(text).unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 16);
        let report = subw(&q, &stats).unwrap();
        assert!(report.value >= Rat::ONE, "{text}");
        for sel in &report.per_selector {
            sel.report.flow.verify_identity().unwrap();
            let integral = sel.report.flow.to_integral().unwrap();
            integral.verify_identity().unwrap();
            let identity = TermIdentity::from_flow(&integral);
            identity.verify().unwrap();
            let seq = ProofSequence::derive(&identity)
                .unwrap_or_else(|e| panic!("no proof sequence for {text}: {e}"));
            seq.verify().unwrap();
        }
    }
}

#[test]
fn reset_lemma_holds_for_every_unconditional_source_of_the_subw_certificates() {
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 16);
    let report = subw(&q, &stats).unwrap();
    for sel in &report.per_selector {
        let identity = TermIdentity::from_flow(&sel.report.flow.to_integral().unwrap());
        let sources: Vec<VarSet> =
            identity.sources.keys().filter(|t| t.is_unconditional()).map(|t| t.subj).collect();
        for s in sources {
            let outcome = reset_drop_source(&identity, s).unwrap();
            outcome.identity.verify().unwrap();
            // At most one target lost (the Reset Lemma's guarantee).
            assert!(identity.num_targets() - outcome.identity.num_targets() <= 1);
        }
    }
}

#[test]
fn width_inequalities_hold_across_queries() {
    // subw ≤ fhtw always; both ≥ 1 for connected queries with at least one
    // atom; fhtw = 1 exactly for free-connex acyclic queries.
    let cases = [
        "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)",
        "Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)",
        "P(A,B) :- R(A,B), S(B,C)",
        "Q() :- R(A,B), S(B,C), T(C,D), U(D,A), M(A,C)",
    ];
    for text in cases {
        let q = parse_query(text).unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 16);
        let f = fhtw(&q, &stats).unwrap().value;
        let s = subw(&q, &stats).unwrap().value;
        assert!(s <= f, "{text}: subw {s} > fhtw {f}");
        assert!(s >= Rat::ONE, "{text}");
    }
}

#[test]
fn measured_statistics_give_sound_bounds_on_real_outputs() {
    // For any instance, N^{polymatroid bound} computed from *measured*
    // statistics upper-bounds the true output size.
    use panda::workloads::{erdos_renyi_db, zipf_graph_db};
    let q = parse_query("Qf(X,Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    for db in [
        erdos_renyi_db(&["R", "S", "T", "U"], 20, 150, 1),
        zipf_graph_db(&["R", "S", "T", "U"], 20, 150, 1.3, 2),
    ] {
        let stats = StatisticsSet::measure(&q, &db);
        let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        let bound_tuples = (stats.base() as f64).powf(report.log_bound.to_f64());
        let out = Panda::new(q.clone()).evaluate_with(&db, EvaluationStrategy::GenericJoin);
        assert!(
            (out.len() as f64) <= bound_tuples * 1.000001,
            "output {} exceeds bound {bound_tuples}",
            out.len()
        );
    }
}
