//! Cold/warm plan-cache differential suite: a warm (cached) run must be
//! **bit-identical** to a cold one — same result rows in the same storage
//! order, the same [`PlanReport`] (up to the `cache_events` telemetry
//! field, which records hit/miss and is deliberately excluded from the
//! bit-identity contract and from EXPLAIN), and byte-identical EXPLAIN
//! text — across both engines, both storage layouts, and structurally
//! isomorphic query variants.
//!
//! Coverage mirrors the parallel-determinism suite's two corpora: the
//! E1–E15 experiment workloads at reduced sizes and a proptest random
//! operator corpus, plus plan-cache-specific pins (isomorphic hits across
//! variable renamings and body-atom permutations, cross-engine serving,
//! deterministic LRU eviction).
//!
//! The plan cache is process-wide, so every test in this binary holds
//! `CACHE_LOCK` while it manipulates cache state; other test binaries are
//! separate processes with their own cache.

// panda-lint: allow(D2) -- test-only serialisation of this binary's tests
// around the process-wide plan cache; ordering affects which test runs
// first, never any engine output.
use std::sync::{Mutex, MutexGuard, PoisonError};

use panda::config::{Engine, Parallelism};
use panda::prelude::*;
use panda::workloads;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// panda-lint: allow(D2) -- see above: test serialisation only.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn cache_guard() -> MutexGuard<'static, ()> {
    // panda-lint: allow(D2) -- see above: test serialisation only.
    CACHE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Raw rows in storage order — the bit-level comparison.
fn raw_rows(rel: &VarRelation) -> Vec<Vec<u64>> {
    rel.rel.iter().map(<[u64]>::to_vec).collect()
}

/// A report rendered for comparison with `cache_events` cleared: the one
/// field in which a warm report may differ from its cold twin.
fn report_modulo_cache_events(report: &PlanReport) -> String {
    let mut r = report.clone();
    r.cache_events = Vec::new();
    format!("{r:?}")
}

/// A deep copy of `db` with a column store attached to every relation (the
/// `PANDA_LAYOUT=columnar` state) — same construction as the
/// parallel-determinism suite.
fn columnar_copy(db: &Database) -> Database {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        let mut copy = panda::relation::Relation::from_rows(rel.arity(), rel.iter());
        if let Some(order) = rel.sort_order() {
            copy = copy.sorted_by_columns(order);
        }
        let _ = copy.column_store();
        out.insert(name, copy);
    }
    out
}

fn random_graph_db(names: &[&str], n: u64, edges: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for name in names {
        let rel = panda::relation::Relation::from_rows(
            2,
            (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
        )
        .deduped();
        db.insert(*name, rel);
    }
    db
}

/// One cold run followed by one warm run of the same query/database/
/// engine cell, asserting the full bit-identity contract.  Returns the
/// cold (report, explain, rows) triple for cross-cell comparisons.
fn assert_cold_warm_identical(
    query: &ConjunctiveQuery,
    db: &Database,
    engine: Engine,
    label: &str,
) -> (PlanReport, String, Vec<Vec<u64>>) {
    plan_cache_clear();
    let panda = Panda::new(query.clone()).with_engine(engine);

    let cold_report = panda.plan_report(db).unwrap();
    let cold_explain = panda.explain(db).unwrap().to_string();
    let cold_rows = raw_rows(&panda.evaluate(db));

    let warm_report = panda.plan_report(db).unwrap();
    let warm_explain = panda.explain(db).unwrap().to_string();
    let warm_rows = raw_rows(&panda.evaluate(db));

    assert_eq!(cold_rows, warm_rows, "{label}: warm rows must be bit-identical to cold");
    assert_eq!(cold_explain, warm_explain, "{label}: warm EXPLAIN must be byte-identical to cold");
    assert_eq!(
        report_modulo_cache_events(&cold_report),
        report_modulo_cache_events(&warm_report),
        "{label}: warm report must equal cold up to cache_events"
    );
    if cache_on() {
        assert_eq!(
            cold_report.cache_events.first(),
            Some(&ReasonCode::PlanCacheMiss),
            "{label}: the first cold report is a miss"
        );
        assert_eq!(
            warm_report.cache_events,
            vec![ReasonCode::PlanCacheHit],
            "{label}: the warm report is a pure hit"
        );
    } else {
        // PANDA_PLAN_CACHE=off (the CI plan-cache-off leg): every report
        // carries the bypass marker and the bit-identity above is the
        // cold path agreeing with itself.
        assert_eq!(cold_report.cache_events, vec![ReasonCode::PlanCacheBypass]);
        assert_eq!(warm_report.cache_events, vec![ReasonCode::PlanCacheBypass]);
    }
    (cold_report, cold_explain, cold_rows)
}

/// Whether the plan cache is enabled in this process (`PANDA_PLAN_CACHE`):
/// the counter- and hit/miss-event assertions only apply when it is.
fn cache_on() -> bool {
    panda::config::plan_cache_enabled()
}

/// The E-workload matrix: every (workload, engine, layout) cell is
/// cold/warm bit-identical, and the cells of one workload agree with each
/// other on rows and EXPLAIN bytes (planning is engine- and
/// layout-independent, cached or not).
#[test]
fn e_workloads_cold_and_warm_runs_are_bit_identical() {
    let _guard = cache_guard();
    let cases: Vec<(ConjunctiveQuery, Database, &str)> = vec![
        // E1: Figure 2's example instance under the projected 4-cycle.
        (workloads::four_cycle_projected(), workloads::figure2_db(), "figure2"),
        // E7/E8: the fhtw-hard double star (heavy/light case splits).
        (workloads::four_cycle_projected(), workloads::double_star_db(24), "double_star"),
        (workloads::four_cycle_full(), workloads::double_star_db(16), "double_star_full"),
        // E9: the triangle query on an Erdős–Rényi graph.
        (
            workloads::triangle_query(),
            workloads::erdos_renyi_db(&["R", "S", "T"], 40, 300, 9),
            "erdos_renyi",
        ),
        // E13: a free-connex acyclic path query.
        (workloads::two_path_projected(), random_graph_db(&["R", "S"], 30, 200, 11), "path"),
    ];
    let engines = [Engine::Sequential, Engine::Parallel(Parallelism::threads(2))];
    for (query, db, label) in &cases {
        let columnar = columnar_copy(db);
        let mut reference: Option<(String, Vec<Vec<u64>>)> = None;
        for engine in engines {
            for (layout, ldb) in [("row-major", db), ("columnar", &columnar)] {
                let cell = format!("{label}/{layout}/{}threads", engine.threads());
                let (_, explain, rows) = assert_cold_warm_identical(query, ldb, engine, &cell);
                match &reference {
                    None => reference = Some((explain, rows)),
                    Some((ref_explain, ref_rows)) => {
                        assert_eq!(ref_explain, &explain, "{cell}: EXPLAIN is cell-independent");
                        assert_eq!(ref_rows, &rows, "{cell}: rows are cell-independent");
                    }
                }
            }
        }
    }
}

/// A plan cached under the sequential engine serves a parallel evaluator
/// (and vice versa) bit-identically: the cache key excludes the thread
/// count because planning is engine-independent.
#[test]
fn cached_plans_serve_across_engines() {
    let _guard = cache_guard();
    let query = workloads::four_cycle_projected();
    let db = workloads::double_star_db(24);

    plan_cache_clear();
    let seq = Panda::new(query.clone()).with_engine(Engine::Sequential);
    let cold_report = seq.plan_report(&db).unwrap();
    let cold_explain = seq.explain(&db).unwrap().to_string();
    let cold_rows = raw_rows(&seq.evaluate(&db));

    let par = Panda::new(query).with_engine(Engine::Parallel(Parallelism::threads(4)));
    let warm_report = par.plan_report(&db).unwrap();
    let warm_explain = par.explain(&db).unwrap().to_string();
    let warm_rows = raw_rows(&par.evaluate(&db));

    if cache_on() {
        assert_eq!(cold_report.cache_events.first(), Some(&ReasonCode::PlanCacheMiss));
        assert_eq!(warm_report.cache_events, vec![ReasonCode::PlanCacheHit]);
    }
    assert_eq!(cold_explain, warm_explain);
    assert_eq!(cold_rows, warm_rows);
    assert_eq!(report_modulo_cache_events(&cold_report), report_modulo_cache_events(&warm_report));
}

/// Structurally isomorphic queries — same structure under renamed
/// variables, permuted body atoms, a different query name — share one
/// cache slot, and a warm isomorphic run is bit-identical to its own cold
/// run.
#[test]
fn isomorphic_queries_share_a_slot_and_stay_bit_identical() {
    let _guard = cache_guard();
    let base = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    // Renamed variables and a renamed head; first-occurrence numbering is
    // unchanged, so the cached selection serves as-is.
    let renamed = parse_query("P(A,B) :- R(A,B), S(B,C), T(C,D), U(D,A)").unwrap();
    // Body atoms permuted; X,Y,Z,W still first occur in that order, so
    // the first-occurrence numbering is again unchanged.
    let permuted = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), U(W,X), T(Z,W)").unwrap();
    let db = workloads::double_star_db(24);

    // Cold references, one per variant, with the cache disabled-by-clear
    // before each so every reference is genuinely cold.
    let mut cold = Vec::new();
    for q in [&base, &renamed, &permuted] {
        plan_cache_clear();
        let p = Panda::new(q.clone());
        cold.push((p.explain(&db).unwrap().to_string(), raw_rows(&p.evaluate(&db))));
    }

    // Warm pass: plan the base query once, then every variant must hit.
    plan_cache_clear();
    let before = plan_cache_stats();
    let base_panda = Panda::new(base.clone());
    let _ = base_panda.plan_report(&db).unwrap();
    let _ = base_panda.evaluate(&db);
    for (q, (cold_explain, cold_rows)) in [&base, &renamed, &permuted].into_iter().zip(&cold) {
        let p = Panda::new(q.clone());
        let report = p.plan_report(&db).unwrap();
        if cache_on() {
            assert_eq!(
                report.cache_events,
                vec![ReasonCode::PlanCacheHit],
                "isomorphic variant must hit the plan cache"
            );
        }
        assert_eq!(&p.explain(&db).unwrap().to_string(), cold_explain);
        assert_eq!(&raw_rows(&p.evaluate(&db)), cold_rows);
    }
    if cache_on() {
        let after = plan_cache_stats();
        // Base: 1 report miss; its evaluation is served by the report-path
        // entry (the fallback tier).  Variants: all hits.
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits - before.hits >= 6);
    }
}

/// An isomorphic query whose variables first occur in a *different order*
/// (σ ≠ identity) is served on the evaluation path by renaming the cached
/// plan's execution artifacts — and the served execution is bit-identical
/// to that query's own cold evaluation.
#[test]
fn renumbered_isomorphic_queries_evaluate_identically() {
    let _guard = cache_guard();
    // Triangle with rotated body: numbering by first occurrence gives the
    // second query a genuinely different variable numbering.
    let q1 = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(Z,X)").unwrap();
    let q2 = parse_query("Q(Y,Z,X) :- S(Y,Z), T(Z,X), R(X,Y)").unwrap();
    let db = workloads::erdos_renyi_db(&["R", "S", "T"], 40, 300, 9);

    plan_cache_clear();
    let cold_rows = raw_rows(&Panda::new(q2.clone()).evaluate(&db));

    plan_cache_clear();
    let before = plan_cache_stats();
    let _ = Panda::new(q1).evaluate(&db);
    let warm_rows = raw_rows(&Panda::new(q2).evaluate(&db));
    let after = plan_cache_stats();

    assert_eq!(cold_rows, warm_rows, "renamed served plan must match cold evaluation");
    if cache_on() {
        assert_eq!(after.misses - before.misses, 1, "q1 plans cold");
        assert_eq!(after.hits - before.hits, 1, "q2 is served from q1's slot");
    }
}

/// LRU eviction is deterministic in access counts: filling the cache past
/// capacity evicts exactly the least-recently-used entry, the eviction is
/// surfaced as a `PlanCacheEvict` event, and the evicted key re-plans as a
/// miss.
#[test]
fn lru_eviction_is_deterministic_and_observable() {
    let _guard = cache_guard();
    if !cache_on() {
        return; // nothing to evict with the cache disabled
    }
    let query = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
    plan_cache_clear();
    let before = plan_cache_stats();
    // Distinct databases give distinct statistics, hence distinct keys for
    // the same query.  Capacity + 1 inserts forces exactly one eviction.
    let dbs: Vec<Database> = (0..=panda::core::PLAN_CACHE_CAP)
        .map(|i| random_graph_db(&["R", "S"], 10 + i as u64, 20 + i, i as u64))
        .collect();
    let mut evict_seen = false;
    for db in &dbs {
        let report = Panda::new(query.clone()).plan_report(db).unwrap();
        evict_seen |= report.cache_events.contains(&ReasonCode::PlanCacheEvict);
    }
    let mid = plan_cache_stats();
    assert!(evict_seen, "the capacity+1'th insert reports PlanCacheEvict");
    assert_eq!(mid.evictions - before.evictions, 1);
    assert_eq!(mid.entries, panda::core::PLAN_CACHE_CAP);
    // The victim was the first (least recently used) database's entry.
    let report = Panda::new(query.clone()).plan_report(&dbs[0]).unwrap();
    assert_eq!(report.cache_events.first(), Some(&ReasonCode::PlanCacheMiss));
    // Every later entry is still resident.
    let report = Panda::new(query).plan_report(&dbs[2]).unwrap();
    assert_eq!(report.cache_events, vec![ReasonCode::PlanCacheHit]);
}

proptest! {
    // Random operator corpus: on random graph databases, cold and warm
    // runs of a cyclic (triangle) and an acyclic (projected path) query
    // are bit-identical; the engine alternates with the seed so both are
    // exercised across the corpus.
    #[test]
    fn random_databases_are_cold_warm_identical(
        n in 4u64..24,
        edges in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let _guard = cache_guard();
        let queries = [workloads::triangle_query(), workloads::two_path_projected()];
        let db = random_graph_db(&["R", "S", "T"], n, edges, seed);
        let engine = if seed % 2 == 0 {
            Engine::Sequential
        } else {
            Engine::Parallel(Parallelism::threads(2))
        };
        for (i, query) in queries.iter().enumerate() {
            let label = format!("query#{i} seed={seed}");
            assert_cold_warm_identical(query, &db, engine, &label);
        }
    }
}
