//! Fuzzing the serving layer's parsers: arbitrary input must never panic
//! the wire parser, the session state machine or the resumable statement
//! parser — every outcome is a structured response.
//!
//! Four properties:
//!
//! 1. raw byte soup through [`Session::handle_line`] never panics and
//!    every reply keeps the framing invariant (`lines=` on the header
//!    announces the body exactly; errors are one line);
//! 2. keyword-shaped token soup through [`parse_request`] is total —
//!    `Ok(request)` or a single-line `ERR <code> ...`, nothing else;
//! 3. chunking is transparent to [`parse_statement`]: draining a script
//!    fed in arbitrary pieces yields the same statements and errors as
//!    draining it whole (the shell's incremental input path);
//! 4. differential: `QUERY` through a session returns exactly the rows the
//!    library returns for the same database and query.
//!
//! The vendored proptest shim is deterministic (fixed seed), so failures
//! reproduce exactly; `PROPTEST_CASES` scales the case count.

use panda::prelude::*;
use panda::server::session::Session;
use panda::server::{body_lines, parse_request, Reply};
use proptest::collection;
use proptest::prelude::*;

/// The framing invariant every reply must satisfy, fuzz or not.
fn framing_ok(reply: &Reply) -> Result<(), String> {
    let Some(header) = reply.lines.first() else {
        return Ok(()); // silent replies (blank lines, LOAD data) are legal
    };
    if !header.starts_with("OK") && !header.starts_with("ERR") {
        return Err(format!("header is neither OK nor ERR: {header}"));
    }
    if header.starts_with("ERR") && reply.lines.len() != 1 {
        return Err(format!("ERR must be a single line: {:?}", reply.lines));
    }
    if body_lines(header) != reply.lines.len() - 1 {
        return Err(format!("lines= does not match the body: {:?}", reply.lines));
    }
    if reply.lines.iter().any(|l| l.contains('\n')) {
        return Err(format!("reply lines must not embed newlines: {:?}", reply.lines));
    }
    Ok(())
}

proptest! {
    #[test]
    fn raw_bytes_never_panic_the_session(
        lines in collection::vec(collection::vec(0u8..255, 0..48), 0..24)
    ) {
        let mut session = Session::new();
        for bytes in &lines {
            let text = String::from_utf8_lossy(bytes).into_owned();
            let reply = session.handle_line(&text);
            if let Err(msg) = framing_ok(&reply) {
                prop_assert!(false, "{} for input {:?}", msg, text);
            }
        }
        // Whatever the soup did (it may have opened a LOAD block), the
        // session must still be usable: close any block, then ping.
        let _ = session.handle_line("END");
        let pong = session.handle_line("PING");
        prop_assert_eq!(&pong.lines, &vec!["OK pong".to_string()]);
    }
}

/// Tokens biased towards the protocol's grammar so the fuzz reaches deep
/// branches (tags, budgets, arities) instead of bouncing off
/// `unknown_command`.  The shim has no string strategies, so lines are
/// assembled by sampling indices into this pool.
const TOKEN_POOL: &[&str] = &[
    "PING",
    "LOAD",
    "END",
    "CLEAR",
    "QUERY",
    "EXPLAIN",
    "STRATEGY",
    "BUDGET",
    "STATS",
    "CANCEL",
    "QUIT",
    "GLOBAL",
    "#1",
    "#99",
    "#x",
    "#",
    "FzTok",
    "fz_tok",
    "bad-name",
    "0",
    "1",
    "2",
    "32",
    "33",
    "18446744073709551615",
    "18446744073709551616",
    "pivots=1",
    "pivots=none",
    "pivots=",
    "rows=soon",
    "branches=4",
    "=",
    "auto",
    "adaptive",
    "yannakakis",
    "static-td",
    "generic-join",
    "binary-join",
    "warp-drive",
    "Q(A,B)",
    ":-",
    "R(A,B),",
    "S(B,C)",
    "Q(A",
    ",",
    "(",
    ")",
    ";",
    "--",
    "\u{1F47E}",
    "\t",
    "",
];

proptest! {
    #[test]
    fn token_soup_keeps_the_wire_parser_total(
        lines in collection::vec(collection::vec(0usize..50, 0..7), 0..24)
    ) {
        let mut session = Session::new();
        for picks in &lines {
            let line = picks
                .iter()
                .map(|&i| TOKEN_POOL.get(i).copied().unwrap_or("PING"))
                .collect::<Vec<_>>()
                .join(" ");
            // The parser is total: a request or a one-line structured error.
            if let Err(err) = parse_request(&line) {
                let rendered = err.render();
                prop_assert!(rendered.starts_with("ERR "), "{rendered}");
                prop_assert!(!rendered.contains('\n'), "{rendered}");
            }
            // And the session absorbs the same line without panicking.
            let reply = session.handle_line(&line);
            if let Err(msg) = framing_ok(&reply) {
                prop_assert!(false, "{} for input {:?}", msg, line);
            }
        }
    }
}

/// Statements biased towards parser edge cases: valid queries, malformed
/// fragments, blanks and comment-ish garbage.  ASCII only, so chunk splits
/// at arbitrary byte offsets stay on character boundaries.
const STATEMENT_POOL: &[&str] = &[
    "Q(A,B) :- FzR(A,B)",
    "Q(A,C) :- FzR(A,B), FzS(B,C)",
    "Q() :- FzR(X,X)",
    "Q(A,B) :- FzR(A,B", // malformed: unclosed paren
    "Q(A,B)",            // malformed: no body
    "   ",               // blank: skipped, not an error
    "!! garbage !!",
];

/// Fully drains `buffer` through [`parse_statement`], returning each
/// statement (`Ok`) or parse error (`Err`) in order.
fn drain(buffer: &mut String) -> Vec<Result<String, String>> {
    let mut out = Vec::new();
    loop {
        match parse_statement(buffer) {
            Parsed::Incomplete => return out,
            Parsed::Statement { query, consumed } => {
                out.push(Ok(query.to_string()));
                buffer.drain(..consumed);
            }
            Parsed::Malformed { error, consumed } => {
                out.push(Err(error.to_string()));
                buffer.drain(..consumed);
            }
        }
    }
}

proptest! {
    #[test]
    fn chunking_is_transparent_to_parse_statement(
        picks in collection::vec((0usize..7, 0usize..2), 0..10),
        cuts in collection::vec(0usize..97, 0..12)
    ) {
        // Assemble a script from the pool, alternating the two terminators.
        let mut script = String::new();
        for &(i, term) in &picks {
            script.push_str(STATEMENT_POOL.get(i).copied().unwrap_or(""));
            script.push(if term == 0 { ';' } else { '\n' });
        }

        // Reference: drain the whole script at once.
        let mut whole = script.clone();
        let reference = drain(&mut whole);

        // Chunked: split the script at the (sorted, deduped) cut offsets
        // and drain after every chunk, carrying the remainder forward.
        let mut offsets: Vec<usize> =
            cuts.iter().map(|&c| c * script.len() / 97).collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets.retain(|&o| o > 0 && o < script.len());
        let mut chunked = Vec::new();
        let mut buffer = String::new();
        let mut start = 0;
        for &end in offsets.iter().chain(std::iter::once(&script.len())) {
            buffer.push_str(script.get(start..end).unwrap_or(""));
            chunked.extend(drain(&mut buffer));
            start = end;
        }

        prop_assert_eq!(chunked, reference);
        prop_assert!(
            matches!(parse_statement(&buffer), Parsed::Incomplete),
            "fully drained buffers must stay incomplete: {:?}", buffer
        );
    }
}

proptest! {
    #[test]
    fn session_queries_agree_with_the_library(
        r_rows in collection::vec((0u64..6, 0u64..6), 0..12),
        s_rows in collection::vec((0u64..6, 0u64..6), 0..12),
        shape in 0usize..5
    ) {
        let queries = [
            "Q(A,B) :- FzR(A,B)",
            "Q(A,C) :- FzR(A,B), FzS(B,C)",
            "Q(A,B,C) :- FzR(A,B), FzS(B,C)",
            "Q(X,Y) :- FzR(X,Y), FzS(Y,X)",
            "Q(A,B,C) :- FzR(A,B), FzR(B,C), FzR(A,C)",
        ];
        let text = queries.get(shape).copied().unwrap_or(queries[0]);

        // The library reference.
        let mut db = Database::new();
        db.insert("FzR", Relation::from_rows(2, r_rows.iter().map(|&(a, b)| [a, b])));
        db.insert("FzS", Relation::from_rows(2, s_rows.iter().map(|&(a, b)| [a, b])));
        let query = parse_query(text).unwrap();
        let vars = query.free_vars().to_vec();
        let answer = Panda::new(query).evaluate(&db);
        let expected: Vec<String> = answer
            .canonical_rows_ordered(&vars)
            .iter()
            .map(|row| row.iter().map(u64::to_string).collect::<Vec<_>>().join(" "))
            .collect();

        // The same data through the wire.
        let mut session = Session::new();
        for (name, rows) in [("FzR", &r_rows), ("FzS", &s_rows)] {
            session.handle_line(&format!("LOAD {name} 2"));
            for &(a, b) in rows.iter() {
                session.handle_line(&format!("{a} {b}"));
            }
            session.handle_line("END");
        }
        let reply = session.handle_line(&format!("QUERY {text}"));
        if let Err(msg) = framing_ok(&reply) {
            prop_assert!(false, "{msg}");
        }
        let header = reply.lines.first().cloned().unwrap_or_default();
        prop_assert!(
            header.starts_with(&format!("OK rows n={} ", expected.len())),
            "header {:?} disagrees with {} library rows", header, expected.len()
        );
        prop_assert_eq!(reply.lines.get(1..).unwrap_or(&[]), &expected[..]);
    }
}
