//! Cross-crate integration tests that pin the paper's worked examples:
//! Figure 1 (tree decompositions), Figure 2 (example instance), the widths
//! of Section 4–6 and the ω-subw closed form of Section 9.3.

use panda::prelude::*;
use panda::workloads::{
    double_star_db, figure2_db, four_cycle_boolean, four_cycle_full, four_cycle_projected,
    s_full_statistics, s_square_statistics, triangle_query,
};

#[test]
fn figure2_output_of_the_full_four_cycle() {
    // Figure 2: the instance has exactly the three output tuples
    // (1,p,3,i), (1,q,5,i), (1,q,5,j).
    let db = figure2_db();
    let q = four_cycle_full();
    let out = Panda::new(q).evaluate(&db);
    assert_eq!(out.rel.canonical_rows(), panda::workloads::paper::figure2_expected_output());
}

#[test]
fn figure2_projected_answer() {
    // Q□(X,Y) on the same instance: the edges (1,p) and (1,q) extend to a
    // 4-cycle, (2,p) does not.
    let db = figure2_db();
    let q = four_cycle_projected();
    let p = 101u64;
    let q_val = 102u64;
    let out = Panda::new(q).evaluate(&db);
    assert_eq!(out.rel.canonical_rows(), vec![vec![1, p], vec![1, q_val]]);
}

#[test]
fn figure1_tree_decompositions() {
    let q = four_cycle_projected();
    let tds = TreeDecomposition::enumerate(&q);
    assert_eq!(tds.len(), 2);
    for td in &tds {
        assert_eq!(td.num_bags(), 2);
        assert!(td.is_valid_for(&q));
        assert!(td.is_free_connex(q.free_vars()));
        assert!(td.bags().iter().all(|b| b.len() == 3));
    }
}

#[test]
fn widths_of_the_running_example() {
    // Section 4.3 and Eq. (44): fhtw(Q□,S□) = 2, subw(Q□,S□) = 3/2, and the
    // same for the Boolean variant.
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    assert_eq!(fhtw(&q, &stats).unwrap().value, Rat::from_int(2));
    assert_eq!(subw(&q, &stats).unwrap().value, Rat::new(3, 2));
    let qb = four_cycle_boolean();
    let stats_b = StatisticsSet::identical_cardinalities(&qb, 1 << 20);
    assert_eq!(subw(&qb, &stats_b).unwrap().value, Rat::new(3, 2));
}

#[test]
fn agm_bounds_of_classic_patterns() {
    let n = 1 << 20;
    let tri = triangle_query();
    assert_eq!(agm_bound(&tri, &[], n).unwrap().log_bound, Rat::new(3, 2));
    let c4 = four_cycle_full();
    assert_eq!(agm_bound(&c4, &[], n).unwrap().log_bound, Rat::from_int(2));
}

#[test]
fn s_full_statistics_tighten_the_bound() {
    // Eq. (19): with the FD W→X and deg_U(W|X) ≤ C the bound drops below
    // the AGM bound 2, and with C = 1 it reaches 3/2.
    let q = four_cycle_full();
    let n = 1 << 20;
    let loose = polymatroid_bound(
        q.all_vars(),
        q.all_vars(),
        &StatisticsSet::identical_cardinalities(&q, n),
    )
    .unwrap();
    assert_eq!(loose.log_bound, Rat::from_int(2));
    let tight = polymatroid_bound(q.all_vars(), q.all_vars(), &s_full_statistics(n, 1)).unwrap();
    assert!(tight.log_bound <= Rat::new(3, 2));
    let mid =
        polymatroid_bound(q.all_vars(), q.all_vars(), &s_full_statistics(n, 1 << 10)).unwrap();
    assert!(mid.log_bound > tight.log_bound);
    assert!(mid.log_bound < loose.log_bound);
    // And every certificate verifies.
    for report in [&loose, &tight, &mid] {
        report.flow.verify_identity().unwrap();
    }
}

#[test]
fn omega_submodular_width_closed_form() {
    // Section 9.3: ω-subw(Q□^bool, S□) = (4ω−1)/(2ω+1), which with the
    // paper's ω = 2.371552 evaluates to ≈ 1.4776 < 3/2.
    let w = panda::entropy::omega_subw_square(panda::entropy::MATRIX_MULT_OMEGA);
    assert!(w < Rat::new(3, 2));
    assert!((w.to_f64() - (4.0 * 2.371552 - 1.0) / (2.0 * 2.371552 + 1.0)).abs() < 1e-9);
    assert!((w.to_f64() - 1.47763).abs() < 1e-4);
}

#[test]
fn every_strategy_agrees_on_the_double_star_instance() {
    let q = four_cycle_projected();
    let db = double_star_db(32);
    let panda = Panda::new(q.clone());
    let order: Vec<Var> = q.free_vars().to_vec();
    let reference =
        panda.evaluate_with(&db, EvaluationStrategy::GenericJoin).canonical_rows_ordered(&order);
    for strategy in [
        EvaluationStrategy::Auto,
        EvaluationStrategy::StaticTd,
        EvaluationStrategy::Adaptive,
        EvaluationStrategy::BinaryJoin,
    ] {
        assert_eq!(
            panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order),
            reference,
            "{strategy:?}"
        );
    }
}
