//! Parallel-determinism suite: the parallel engine must produce
//! **bit-identical** outputs to sequential evaluation at every tested
//! thread count {1, 2, 8} — same rows in the same storage order, not just
//! the same set.  The workload matrix additionally crosses every cell with
//! the storage layout {RowMajor, Columnar}: a columnar-activated copy of
//! each database must reproduce the row-major sequential reference bit for
//! bit under every strategy and thread count.
//!
//! Coverage mirrors the two corpora named by the docs/parallel PR:
//!
//! * the proptest *differential operator corpus* (random relations joined
//!   through the sharded `par_join` and the generic join's parallel
//!   top-level split) — complementing the per-operator differential suite
//!   in `crates/relation/tests/operators_differential.rs`, and
//! * the *E1–E15 experiment workloads* (Figure 2, the fhtw-hard double
//!   star of E7/E8, the Erdős–Rényi and Zipf instances of E9, the path
//!   instance of E13) at reduced sizes, through every evaluation strategy
//!   plus DDR models and the width computations the tables report.
//!
//! The CI matrix additionally re-runs the whole workspace test suite under
//! `PANDA_THREADS ∈ {1, 4}`, which routes every default-constructed
//! evaluator through both engines.

use panda::config::{Engine, Parallelism};
use panda::prelude::*;
use panda::relation::operators;
use panda::workloads;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thread counts the determinism contract is pinned at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Raw rows in storage order — the bit-level comparison.
fn raw_rows(rel: &VarRelation) -> Vec<Vec<u64>> {
    rel.rel.iter().map(<[u64]>::to_vec).collect()
}

fn engines() -> Vec<(usize, Engine)> {
    THREAD_COUNTS.iter().map(|&n| (n, Engine::Parallel(Parallelism::threads(n)))).collect()
}

/// A deep copy of `db` with a column store attached to every relation —
/// the state `PANDA_LAYOUT=columnar` produces at insert time.  (The env
/// knob is read once per process, so the in-process layout matrix
/// activates the columnar layout by attaching stores directly; the CI
/// matrix covers the env-variable route.)
fn columnar_copy(db: &Database) -> Database {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        // A deep copy: clones share the index cache, so attaching a store
        // to a clone would silently activate the row-major original too.
        let mut copy = panda::relation::Relation::from_rows(rel.arity(), rel.iter());
        if let Some(order) = rel.sort_order() {
            // Stable re-sort of already-sorted rows: identical storage
            // order, but the recorded sort order carries over.
            copy = copy.sorted_by_columns(order);
        }
        let _ = copy.column_store();
        out.insert(name, copy);
    }
    out
}

fn random_graph_db(names: &[&str], n: u64, edges: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for name in names {
        let rel = panda::relation::Relation::from_rows(
            2,
            (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
        )
        .deduped();
        db.insert(*name, rel);
    }
    db
}

/// Every (strategy, workload, layout) cell of the experiment tables:
/// parallel output equals the row-major sequential output bit for bit,
/// and a columnar-activated database reproduces the same bits under
/// every strategy and thread count.
#[test]
fn all_strategies_are_bit_identical_across_thread_counts_and_layouts() {
    let cases: Vec<(ConjunctiveQuery, Database, &str)> = vec![
        // E1: Figure 2's example instance under the projected 4-cycle.
        (workloads::four_cycle_projected(), workloads::figure2_db(), "figure2"),
        // E7/E8: the fhtw-hard double star (heavy/light case splits).
        (workloads::four_cycle_projected(), workloads::double_star_db(32), "double_star"),
        (workloads::four_cycle_full(), workloads::double_star_db(24), "double_star_full"),
        // E9: the triangle query on Erdős–Rényi and Zipf-skewed graphs.
        (
            workloads::triangle_query(),
            workloads::erdos_renyi_db(&["R", "S", "T"], 60, 600, 9),
            "erdos_renyi",
        ),
        (
            workloads::triangle_query(),
            workloads::zipf_graph_db(&["R", "S", "T"], 60, 600, 1.1, 10),
            "zipf",
        ),
        // E13: a free-connex acyclic path query.
        (workloads::two_path_projected(), random_graph_db(&["R", "S"], 30, 200, 11), "path"),
    ];
    let strategies = [
        EvaluationStrategy::Auto,
        EvaluationStrategy::GenericJoin,
        EvaluationStrategy::StaticTd,
        EvaluationStrategy::Adaptive,
        EvaluationStrategy::BinaryJoin,
    ];
    for (query, db, label) in &cases {
        let columnar = columnar_copy(db);
        for strategy in strategies {
            let seq = Panda::new(query.clone())
                .with_engine(Engine::Sequential)
                .evaluate_with(db, strategy);
            let expected = raw_rows(&seq);
            for (layout, ldb) in [("row-major", db), ("columnar", &columnar)] {
                let seq_layout = Panda::new(query.clone())
                    .with_engine(Engine::Sequential)
                    .evaluate_with(ldb, strategy);
                assert_eq!(seq_layout.vars, seq.vars, "{label}/{strategy:?}/{layout}/seq");
                assert_eq!(
                    raw_rows(&seq_layout),
                    expected,
                    "{label}/{strategy:?}/{layout} diverges sequentially"
                );
                for (threads, engine) in engines() {
                    let par =
                        Panda::new(query.clone()).with_engine(engine).evaluate_with(ldb, strategy);
                    assert_eq!(par.vars, seq.vars, "{label}/{strategy:?}/{layout}/t{threads}");
                    assert_eq!(
                        raw_rows(&par),
                        expected,
                        "{label}/{strategy:?}/{layout} diverges at {threads} threads"
                    );
                }
            }
        }
    }
}

/// DDR models (E7): per-target relations are bit-identical too.
#[test]
fn ddr_models_are_bit_identical_across_thread_counts() {
    let query = workloads::four_cycle_projected();
    let selector = BagSelector::new(vec![
        VarSet::from_iter([Var(0), Var(1), Var(2)]),
        VarSet::from_iter([Var(1), Var(2), Var(3)]),
    ]);
    let rule = DisjunctiveRule::for_bag_selector(&query, &selector);
    for db in [workloads::double_star_db(32), random_graph_db(&["R", "S", "T", "U"], 12, 70, 5)] {
        let stats = StatisticsSet::measure(&query, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        let seq = evaluator.evaluate_with_engine(&db, Engine::Sequential);
        let columnar = columnar_copy(&db);
        for (layout, ldb) in [("row-major", &db), ("columnar", &columnar)] {
            for engine in
                std::iter::once(Engine::Sequential).chain(engines().into_iter().map(|(_, e)| e))
            {
                let par = evaluator.evaluate_with_engine(ldb, engine);
                assert_eq!(par.targets.len(), seq.targets.len());
                for ((s_schema, s_rel), (p_schema, p_rel)) in seq.targets.iter().zip(&par.targets) {
                    assert_eq!(s_schema, p_schema);
                    assert_eq!(
                        raw_rows(p_rel),
                        raw_rows(s_rel),
                        "DDR target diverges under {layout}/{engine:?}"
                    );
                }
            }
        }
    }
}

/// The width computations behind the tables (E3/E4): parallel selector and
/// bag chains report identical widths and per-selector bounds.
#[test]
fn width_computations_are_identical_across_thread_counts() {
    for query in [workloads::four_cycle_projected(), workloads::four_cycle_boolean()] {
        let stats = StatisticsSet::identical_cardinalities(&query, 1 << 12);
        let tds = TreeDecomposition::enumerate(&query);
        let seq_subw = subw(&query, &stats).unwrap();
        let seq_fhtw = fhtw(&query, &stats).unwrap();
        for &threads in &THREAD_COUNTS {
            let par_subw =
                panda::entropy::subw_with_tds_parallel(&query, &tds, &stats, threads).unwrap();
            assert_eq!(par_subw.value, seq_subw.value);
            for (p, s) in par_subw.per_selector.iter().zip(&seq_subw.per_selector) {
                assert_eq!(p.report.log_bound, s.report.log_bound);
            }
            let par_fhtw =
                panda::entropy::fhtw_with_tds_parallel(&query, &tds, &stats, threads).unwrap();
            assert_eq!(par_fhtw.value, seq_fhtw.value);
            assert_eq!(par_fhtw.best, seq_fhtw.best);
        }
    }
}

/// Asserts every field of a [`PlanReport`] — selection metadata, widths,
/// downgrades, per-branch bounds with their certificates — is identical
/// between two reports.
fn assert_reports_identical(par: &PlanReport, seq: &PlanReport, label: &str) {
    assert_eq!(par.strategy, seq.strategy, "{label}: executed strategy");
    assert_eq!(par.selected, seq.selected, "{label}: selected strategy");
    assert_eq!(par.rule, seq.rule, "{label}: selector rule");
    assert_eq!(par.reason, seq.reason, "{label}: reason code");
    assert_eq!(par.downgrades, seq.downgrades, "{label}: downgrades");
    assert_eq!(par.fhtw, seq.fhtw, "{label}: fhtw");
    assert_eq!(par.subw, seq.subw, "{label}: subw");
    assert_eq!(par.tds, seq.tds, "{label}: tds");
    assert_eq!(par.partitions, seq.partitions, "{label}: partitions");
    assert_eq!(par.branch_count, seq.branch_count, "{label}: branch count");
    assert_eq!(par.branch_bounds, seq.branch_bounds, "{label}: branch bounds incl. certificates");
    assert_eq!(par.lp_pivots_used, seq.lp_pivots_used, "{label}: lp pivots used");
}

/// Planning is engine-independent: the same strategy, selector rule,
/// reason codes, widths, partitions, branch bounds (down to the
/// Shannon-flow certificates) and pivot counts come out of a parallel
/// planner at every thread count, with and without budgets.
#[test]
fn plan_reports_are_engine_independent() {
    let query = workloads::four_cycle_projected();
    let db = workloads::double_star_db(24);
    // Unbudgeted, and budgeted tightly enough that the pivot counter is
    // exercised (but not exhausted) — both must be thread-count-invariant.
    let budget_configs = [
        ("unbudgeted", Budgets::unlimited()),
        ("budgeted", Budgets::unlimited().with_lp_pivot_budget(100_000)),
    ];
    for (label, budgets) in budget_configs {
        let seq = Panda::new(query.clone())
            .with_statistics(StatisticsSet::identical_cardinalities(&query, 1 << 12))
            .with_engine(Engine::Sequential)
            .with_budgets(budgets)
            .plan_report(&db)
            .unwrap();
        if label == "budgeted" {
            assert!(seq.lp_pivots_used.is_some(), "budgeted planning must report pivot usage");
        }
        for (threads, engine) in engines() {
            let par = Panda::new(query.clone())
                .with_statistics(StatisticsSet::identical_cardinalities(&query, 1 << 12))
                .with_engine(engine)
                .with_budgets(budgets)
                .plan_report(&db)
                .unwrap();
            assert_reports_identical(&par, &seq, &format!("{label}/t{threads}"));
        }
    }
}

/// The EXPLAIN rendering — the full byte string — is engine-independent
/// too (this is what the CI byte-stability job relies on).
#[test]
fn explain_output_is_engine_independent() {
    let query = workloads::four_cycle_projected();
    let db = workloads::double_star_db(24);
    let seq = Panda::new(query.clone())
        .with_statistics(StatisticsSet::identical_cardinalities(&query, 1 << 12))
        .with_engine(Engine::Sequential)
        .explain(&db)
        .unwrap()
        .to_string();
    for (threads, engine) in engines() {
        let par = Panda::new(query.clone())
            .with_statistics(StatisticsSet::identical_cardinalities(&query, 1 << 12))
            .with_engine(engine)
            .explain(&db)
            .unwrap()
            .to_string();
        assert_eq!(par, seq, "EXPLAIN text diverges at {threads} threads");
    }
}

proptest! {
    // The differential operator corpus, driven through the parallel
    // engine: random binary joins via `par_join` shards stay bit-identical
    // to the sequential operator.
    #[test]
    fn prop_operator_corpus_par_join_matches(
        lrows in proptest::collection::vec((0u64..8, 0u64..8), 0..60),
        rrows in proptest::collection::vec((0u64..8, 0u64..8), 0..60),
        threads in 1usize..9,
    ) {
        let left = panda::relation::Relation::from_rows(2, lrows.iter().map(|(a, b)| [*a, *b]));
        let right = panda::relation::Relation::from_rows(2, rrows.iter().map(|(a, b)| [*a, *b]));
        let seq: Vec<Vec<u64>> =
            operators::join(&left, &right, &[(1, 0)]).iter().map(<[u64]>::to_vec).collect();
        let par: Vec<Vec<u64>> = operators::par_join(&left, &right, &[(1, 0)], threads)
            .iter()
            .map(<[u64]>::to_vec)
            .collect();
        prop_assert_eq!(par, seq);
    }

    // Random triangle instances through the generic join's parallel
    // top-level split.
    #[test]
    fn prop_operator_corpus_generic_join_matches(
        edges in proptest::collection::vec((0u64..12, 0u64..12), 1..120),
        threads in 2usize..9,
    ) {
        let query = workloads::triangle_query();
        let rel = panda::relation::Relation::from_rows(2, edges.iter().map(|(a, b)| [*a, *b])).deduped();
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.insert(name, rel.clone());
        }
        let seq = GenericJoin::evaluate_with_engine(&query, &db, Engine::Sequential);
        let par = GenericJoin::evaluate_with_engine(
            &query,
            &db,
            Engine::Parallel(Parallelism::threads(threads)),
        );
        prop_assert_eq!(raw_rows(&par), raw_rows(&seq));
    }
}
