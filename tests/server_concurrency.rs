//! Concurrent-session determinism: N clients hammering one TCP server get
//! byte-for-byte the transcripts a sequential in-process [`Session`] gives
//! for the same scripts — concurrency, shared plan cache, backpressure and
//! a warm cache must all be invisible in the bytes.
//!
//! The one deliberately racy path, out-of-band `CANCEL`, is tested for its
//! *envelope* instead: the target request answers either its full correct
//! result or `ERR cancelled`, the ack names a legal state, and the session
//! keeps serving afterwards.
//!
//! This binary runs in the CI matrix (engines × layouts × thread counts)
//! and in the plan-cache-off job, covering cache-on and cache-off modes.

// panda-lint: allow-file(D2) -- this test IS the concurrency harness for
// the serving layer: it needs real client threads against a real TCP
// server to exercise the reader/worker hand-off.  Determinism is the
// property under test, not a casualty: every assertion compares against a
// sequential reference transcript.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::thread;

use panda::server::session::Session;
use panda::server::{body_lines, serve, ServeOptions, QUEUE_CAP};

/// Boots a server on an ephemeral port and leaves it accepting in a
/// detached thread for the lifetime of the test process.
fn spawn_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        let _ = serve(&listener, ServeOptions::default());
    });
    addr
}

/// Runs a script over one TCP connection, fully pipelined: writes every
/// request, half-closes, and reads response lines until the server closes.
fn run_client(addr: std::net::SocketAddr, script: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let reader = BufReader::new(stream);
    let mut payload = String::new();
    for line in script {
        payload.push_str(line);
        payload.push('\n');
    }
    writer.write_all(payload.as_bytes()).expect("write script");
    writer.flush().expect("flush script");
    let _ = stream_shutdown_write(&writer);
    let mut out = Vec::new();
    for line in reader.lines() {
        out.push(line.expect("read response line"));
    }
    out
}

fn stream_shutdown_write(stream: &TcpStream) -> std::io::Result<()> {
    stream.shutdown(Shutdown::Write)
}

/// The sequential reference: the same script through a fresh in-process
/// session, no sockets and no threads.
fn reference(script: &[String]) -> Vec<String> {
    let mut session = Session::new();
    let mut out = Vec::new();
    for line in script {
        out.extend(session.handle_line(line).lines);
    }
    out
}

fn s(lines: &[&str]) -> Vec<String> {
    lines.iter().map(ToString::to_string).collect()
}

/// Six deliberately different workloads: happy-path joins, EXPLAIN,
/// strategy switches, budget downgrades and structured errors, so the
/// interleaving mixes cheap and expensive requests and error paths.
fn workloads(tag: usize) -> Vec<String> {
    let base = [
        s(&[
            "LOAD CcR 2",
            "1 2",
            "2 3",
            "3 4",
            "END",
            "LOAD CcS 2",
            "2 9",
            "3 9",
            "END",
            "QUERY Q(A,C) :- CcR(A,B), CcS(B,C)",
            "EXPLAIN Q(A,C) :- CcR(A,B), CcS(B,C)",
        ]),
        s(&[
            "LOAD CcE 2",
            "1 2",
            "2 3",
            "1 3",
            "END",
            "QUERY Tri() :- CcE(A,B), CcE(B,C), CcE(A,C)",
            "STRATEGY generic-join",
            "QUERY Q(A,B,C) :- CcE(A,B), CcE(B,C), CcE(A,C)",
        ]),
        s(&[
            "LOAD CcX 2",
            "1 2",
            "END",
            "LOAD CcY 2",
            "2 3",
            "END",
            "LOAD CcZ 2",
            "3 4",
            "END",
            "LOAD CcW 2",
            "4 1",
            "END",
            "BUDGET pivots=1",
            "EXPLAIN Q(X,Y) :- CcX(X,Y), CcY(Y,Z), CcZ(Z,W), CcW(W,X)",
            "QUERY Q(X,Y) :- CcX(X,Y), CcY(Y,Z), CcZ(Z,W), CcW(W,X)",
        ]),
        s(&[
            "LOAD CcC 2",
            "1 2",
            "2 1",
            "END",
            "STRATEGY yannakakis",
            "QUERY Tri() :- CcC(A,B), CcC(B,C), CcC(C,A)",
            "STRATEGY auto",
            "QUERY Q(A,B) :- CcC(A,B)",
        ]),
        s(&[
            "PING",
            "QUERY nonsense",
            "LOAD CcB 2",
            "1 oops",
            "END",
            "QUERY Q(A,B) :- CcB(A,B)",
            "BUDGET pivots=zero",
            "PING",
        ]),
        s(&[
            "LOAD CcP 3",
            "1 2 3",
            "4 5 6",
            "END",
            "QUERY Q(A,B,C) :- CcP(A,B,C)",
            "STRATEGY binary-join",
            "QUERY Q(A,C) :- CcP(A,B,C)",
        ]),
    ];
    base.get(tag % base.len()).cloned().unwrap_or_default()
}

#[test]
fn concurrent_clients_match_the_sequential_reference() {
    let addr = spawn_server();
    let scripts: Vec<Vec<String>> = (0..6).map(workloads).collect();
    let expected: Vec<Vec<String>> = scripts.iter().map(|sc| reference(sc)).collect();

    // Cold pass: all six clients at once, then a warm pass to pin that a
    // warm process-wide plan cache changes no bytes.
    for pass in ["cold", "warm"] {
        let handles: Vec<_> = scripts
            .iter()
            .cloned()
            .map(|script| thread::spawn(move || run_client(addr, &script)))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let transcript = handle.join().expect("client thread");
            assert_eq!(
                transcript, expected[i],
                "{pass} client {i} diverged from the sequential reference"
            );
        }
    }
}

#[test]
fn backpressure_preserves_order_beyond_the_queue_capacity() {
    // 5× the bounded queue, fully pipelined: the reader must block, not
    // drop or reorder, so the response stream is exactly N pongs.
    let addr = spawn_server();
    let n = QUEUE_CAP * 5;
    let script: Vec<String> = (0..n).map(|_| "PING".to_string()).collect();
    let transcript = run_client(addr, &script);
    assert_eq!(transcript, vec!["OK pong".to_string(); n]);
}

#[test]
fn oversized_lines_resync_at_the_next_newline() {
    let addr = spawn_server();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut payload = Vec::new();
    payload.extend_from_slice(b"PING\n");
    payload.extend_from_slice(&vec![b'x'; 80 * 1024]);
    payload.extend_from_slice(b"\nPING\n");
    writer.write_all(&payload).expect("write");
    let _ = stream.shutdown(Shutdown::Write);
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text).expect("read");
    // The line_too_long error is written by the reader out-of-band, so its
    // position relative to the pongs is not pinned — the multiset is.
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "framing must resync after the oversized line: {lines:?}");
    assert_eq!(lines.iter().filter(|l| **l == "OK pong").count(), 2, "{lines:?}");
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("ERR line_too_long")).count(),
        1,
        "oversized line must be answered with a structured error: {lines:?}"
    );
}

/// Splits a raw response-line stream into framed replies using the
/// protocol's own `lines=` rule.
fn frame(lines: &[String]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(header) = lines.get(i) {
        let body = body_lines(header);
        out.push(lines.get(i..=i + body).map(<[String]>::to_vec).unwrap_or_default());
        i += body + 1;
    }
    out
}

#[test]
fn mid_query_cancel_is_race_free_in_outcome() {
    // The cancel itself is racy (queued / inflight / already done); the
    // *outcome* must not be: the target answers its full correct result or
    // `ERR cancelled`, and the session keeps serving either way.
    let addr = spawn_server();
    let script = s(&[
        "LOAD CnR 2",
        "1 2",
        "2 3",
        "3 1",
        "END",
        "BUDGET pivots=10000",
        "STRATEGY adaptive",
        "#1 QUERY Q(A,B,C) :- CnR(A,B), CnR(B,C), CnR(C,A)",
        "CANCEL 1",
        "STRATEGY auto",
        "QUERY Q(A,B) :- CnR(A,B)",
    ]);
    // The follow-up query's exact bytes, from a session that never cancels.
    let tail_expected =
        reference(&s(&["LOAD CnR 2", "1 2", "2 3", "3 1", "END", "QUERY Q(A,B) :- CnR(A,B)"]));
    let tail_expected = &tail_expected[1..]; // drop the LOAD ack
    let full_expected = reference(&s(&[
        "LOAD CnR 2",
        "1 2",
        "2 3",
        "3 1",
        "END",
        "BUDGET pivots=10000",
        "STRATEGY adaptive",
        "QUERY Q(A,B,C) :- CnR(A,B), CnR(B,C), CnR(C,A)",
    ]));
    let full_expected = &full_expected[3..]; // the target's success reply

    for round in 0..25 {
        let transcript = run_client(addr, &script);
        let replies = frame(&transcript);
        // LOAD + BUDGET + STRATEGY, target, cancel ack, STRATEGY, tail = 7.
        assert_eq!(replies.len(), 7, "round {round}: {transcript:?}");
        // The ack may interleave anywhere between whole replies (the
        // reader writes it out-of-band), so classify by content.
        let mut target = None;
        let mut ack = None;
        let mut tail = None;
        for reply in &replies {
            let header = reply.first().map(String::as_str).unwrap_or_default();
            if header.starts_with("OK cancel id=1") {
                ack = Some(reply.clone());
            } else if reply[..] == *tail_expected {
                tail = Some(reply.clone());
            } else if reply[..] == *full_expected || header.starts_with("ERR cancelled") {
                target = Some(reply.clone());
            }
        }
        let target =
            target.unwrap_or_else(|| panic!("round {round}: no target reply in {transcript:?}"));
        let ack = ack.unwrap_or_else(|| panic!("round {round}: no cancel ack in {transcript:?}"));
        let tail = tail.unwrap_or_else(|| panic!("round {round}: no tail reply in {transcript:?}"));

        // Envelope for the racy target: all-or-nothing.
        if target[0].starts_with("OK") {
            assert_eq!(&target[..], full_expected, "round {round}: partial result leaked");
        } else {
            assert!(
                target[0].starts_with("ERR cancelled "),
                "round {round}: unexpected target error {target:?}"
            );
        }
        // The ack names one of the legal states.
        let legal = ["queued", "inflight", "done", "pending"]
            .iter()
            .any(|st| ack[0] == format!("OK cancel id=1 state={st}"));
        assert!(legal, "round {round}: bad ack {ack:?}");
        // The session survives: the follow-up is byte-exact.
        assert_eq!(&tail[..], tail_expected, "round {round}");
    }
}

#[test]
fn a_session_after_cancellation_still_caches_and_explains() {
    // Cancellation must not poison the process-wide plan cache: after a
    // cancelled request, the same query from a fresh connection must give
    // the exact sequential-reference bytes.
    let addr = spawn_server();
    let cancel_script = s(&[
        "LOAD CpR 2",
        "1 2",
        "2 3",
        "END",
        "#5 QUERY Q(A,C) :- CpR(A,B), CpR(B,C)",
        "CANCEL 5",
    ]);
    let _ = run_client(addr, &cancel_script);
    let follow_script = s(&[
        "LOAD CpR 2",
        "1 2",
        "2 3",
        "END",
        "QUERY Q(A,C) :- CpR(A,B), CpR(B,C)",
        "EXPLAIN Q(A,C) :- CpR(A,B), CpR(B,C)",
    ]);
    assert_eq!(run_client(addr, &follow_script), reference(&follow_script));
}
