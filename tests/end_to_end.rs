//! End-to-end differential tests: every evaluation strategy must agree with
//! a reference worst-case-optimal join on randomized instances, and the
//! DDR evaluator must always produce valid models.

use panda::core::faq;
use panda::core::DdrEvaluator;
use panda::prelude::*;
use panda::workloads::{erdos_renyi_db, zipf_graph_db};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_db_for(query: &ConjunctiveQuery, n: u64, tuples: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for atom in query.atoms() {
        if db.relation(&atom.relation).is_some() {
            continue;
        }
        let rel = Relation::from_rows(
            atom.arity(),
            (0..tuples).map(|_| (0..atom.arity()).map(|_| rng.gen_range(0..n)).collect::<Vec<_>>()),
        )
        .deduped();
        db.insert(atom.relation.clone(), rel);
    }
    db
}

#[test]
fn differential_testing_across_strategies_and_queries() {
    let queries = [
        "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)",
        "Q(X) :- R(X,Y), S(Y,Z), T(Z,X)",
        "Q(A,D) :- R(A,B), S(B,C), T(C,D)",
        "Q() :- R(A,B), S(B,C), T(C,A)",
        "Q(A,B,C) :- R(A,B), S(B,C), T(C,A)",
        "Q(X,Y) :- R(X,Z), S(Z,Y)",
    ];
    for (qi, text) in queries.iter().enumerate() {
        let q = parse_query(text).unwrap();
        for seed in 0..3u64 {
            let db = random_db_for(&q, 8, 45, seed * 31 + qi as u64);
            let panda = Panda::new(q.clone());
            let order: Vec<Var> = q.free_vars().to_vec();
            let reference = panda
                .evaluate_with(&db, EvaluationStrategy::GenericJoin)
                .canonical_rows_ordered(&order);
            for strategy in [
                EvaluationStrategy::Auto,
                EvaluationStrategy::StaticTd,
                EvaluationStrategy::Adaptive,
                EvaluationStrategy::BinaryJoin,
            ] {
                let got = panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order);
                assert_eq!(got, reference, "query `{text}`, seed {seed}, {strategy:?}");
            }
        }
    }
}

#[test]
fn ddr_models_are_valid_on_random_and_skewed_instances() {
    let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    let tds = TreeDecomposition::enumerate(&q);
    let selectors = BagSelector::enumerate(&tds);
    for (i, db) in [
        erdos_renyi_db(&["R", "S", "T", "U"], 15, 90, 5),
        zipf_graph_db(&["R", "S", "T", "U"], 30, 150, 1.4, 6),
    ]
    .iter()
    .enumerate()
    {
        let stats = StatisticsSet::measure(&q, db);
        for selector in &selectors {
            let rule = DisjunctiveRule::for_bag_selector(&q, selector);
            let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
            let model = evaluator.evaluate(db);
            assert!(model.is_valid_model(&rule, db), "instance {i}, selector {selector:?}");
        }
    }
}

#[test]
fn counting_matches_full_enumeration_on_random_instances() {
    let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,X)").unwrap();
    let full = q.with_free(q.all_vars());
    for seed in 0..4u64 {
        let db = random_db_for(&q, 7, 40, seed);
        let counted = faq::count_assignments(&q, &db);
        let enumerated = Panda::new(full.clone())
            .evaluate_with(&db, EvaluationStrategy::GenericJoin)
            .len() as u64;
        assert_eq!(counted, enumerated, "seed {seed}");
    }
}

#[test]
fn plan_reports_are_consistent_with_theory() {
    let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    let db = erdos_renyi_db(&["R", "S", "T", "U"], 12, 70, 9);
    let report = Panda::new(q.clone())
        .with_statistics(StatisticsSet::identical_cardinalities(&q, 1 << 16))
        .plan_report(&db)
        .unwrap();
    assert!(report.subw <= report.fhtw);
    assert_eq!(report.strategy, EvaluationStrategy::Adaptive);
    assert_eq!(report.tds.len(), 2);
    assert!(!report.partitions.is_empty());
}
