//! Smoke tests for the umbrella crate: every `panda::prelude` item must
//! resolve, and the paper's running example (the projected 4-cycle,
//! Eq. 2) must parse, plan and evaluate through the flat re-exports
//! alone.  This pins the public surface that `src/lib.rs` promises; a
//! rename in any member crate that breaks a re-export fails here first,
//! with a clearer message than a doctest.

use panda::prelude::*;

/// Mentioning a type is enough to prove the re-export resolves; the
/// turbofish-free `let _: Type` form also checks it is a *type*, not a
/// stray module or function.
#[test]
fn every_prelude_type_resolves() {
    fn assert_type<T: ?Sized>() {}

    // panda-core
    assert_type::<BinaryJoinPlan>();
    assert_type::<DdrEvaluator>();
    assert_type::<EvaluationStrategy>();
    assert_type::<GenericJoin>();
    assert_type::<Panda>();
    assert_type::<PandaEvaluator>();
    assert_type::<StaticTdPlan>();
    assert_type::<VarRelation>();
    // panda-entropy
    assert_type::<ShannonFlow>();
    assert_type::<Statistic>();
    assert_type::<StatisticsSet>();
    // panda-proof
    assert_type::<ProofSequence>();
    assert_type::<ProofStep>();
    assert_type::<TermIdentity>();
    // panda-query
    assert_type::<Atom>();
    assert_type::<BagSelector>();
    assert_type::<ConjunctiveQuery>();
    assert_type::<DisjunctiveRule>();
    assert_type::<TreeDecomposition>();
    assert_type::<Var>();
    assert_type::<VarSet>();
    // panda-rational
    assert_type::<Rat>();
    // panda-relation
    assert_type::<Database>();
    assert_type::<Relation>();
}

#[test]
fn every_prelude_function_resolves() {
    // Taking a function pointer proves each free-function re-export
    // resolves with its expected shape without running anything.
    let _: fn(&str) -> Result<ConjunctiveQuery, panda::query::ParseError> = parse_query;
    let _ = agm_bound;
    let _ = ddr_polymatroid_bound;
    let _ = fhtw;
    let _ = polymatroid_bound;
    let _ = subw;
}

#[test]
fn four_cycle_parses_plans_and_evaluates_via_prelude() {
    // The paper's running example, end to end through the prelude.
    let query = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
    assert_eq!(query.atoms().len(), 4);
    assert_eq!(query.free_vars().len(), 2);

    // Widths under identical cardinalities (Eq. 23): fhtw = 2, subw = 3/2.
    let stats = StatisticsSet::identical_cardinalities(&query, 1_000_000);
    assert_eq!(fhtw(&query, &stats).unwrap().value, Rat::from_int(2));
    assert_eq!(subw(&query, &stats).unwrap().value, Rat::new(3, 2));

    // Figure 2's instance: (1,p) and (1,q) extend to 4-cycles.
    let db = panda::workloads::figure2_db();
    let answer = Panda::new(query).evaluate(&db);
    assert_eq!(answer.len(), 2);
}

#[test]
fn umbrella_modules_reach_every_member_crate() {
    // One cheap call per re-exported module, so a dropped `pub use` in
    // src/lib.rs cannot go unnoticed.
    assert_eq!(panda::rational::gcd(12, 18), 6);
    let lp = panda::lp::LinearProgram::new(1);
    drop(lp);
    assert_eq!(panda::relation::Relation::new(2).arity(), 2);
    assert_eq!(panda::query::Var(3).0, 3);
    let q = parse_query("Q(X) :- R(X,Y), S(Y,X)").unwrap();
    let stats = panda::entropy::StatisticsSet::identical_cardinalities(&q, 100);
    let universe = q.all_vars();
    assert!(panda::entropy::polymatroid_bound(universe, universe, &stats).is_ok());
    let m = panda::fmm::BoolMatrix::zeros(4, 4);
    assert_eq!(m.count_ones(), 0);
    let db = panda::workloads::figure2_db();
    assert!(db.relation("R").is_some());
}
