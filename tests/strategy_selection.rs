//! Strategy-selection conformance suite: one scenario test per selector
//! rule, one per fail-soft downgrade edge, plus property-based coverage of
//! the report invariants and of result bit-identity under downgrades.
//!
//! The selector (see `docs/ARCHITECTURE.md`, "Strategy selection") walks a
//! fixed rule list — explicit override, acyclic fast path, subw/fhtw gap,
//! TD fallback, generic default — and every budget violation downgrades
//! one-way down the ladder `Adaptive → StaticTd → BinaryJoin`.  These
//! tests pin each rule and each edge by constructing the exact input that
//! triggers it, then assert the machine-readable metadata (`rule`,
//! `reason`, `downgrades`) *and* that the executed plan still computes the
//! correct relation.

use panda::config::{Engine, Parallelism};
use panda::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph_db(names: &[&str], n: u64, edges: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for name in names {
        let rel = panda::relation::Relation::from_rows(
            2,
            (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
        )
        .deduped();
        db.insert(*name, rel);
    }
    db
}

/// The 4-cycle statistics under which `subw = 3/2 < 2 = fhtw` (Eq. 23).
fn gap_stats(query: &ConjunctiveQuery) -> StatisticsSet {
    StatisticsSet::identical_cardinalities(query, 1 << 12)
}

fn canonical(rel: &VarRelation, query: &ConjunctiveQuery) -> Vec<Vec<u64>> {
    rel.canonical_rows_ordered(&query.free_vars().to_vec())
}

// ---------------------------------------------------------------------------
// One scenario per selector rule.
// ---------------------------------------------------------------------------

#[test]
fn rule_1_explicit_override_steps_aside() {
    // The gap rule would pick Adaptive here; an explicit request wins and
    // the selector records that it stepped aside.
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    let panda = Panda::new(query).with_statistics(stats);
    let report = panda.plan_report_for(&db, EvaluationStrategy::BinaryJoin).unwrap();
    assert_eq!(report.rule, SelectorRule::ExplicitOverride);
    assert_eq!(report.reason, ReasonCode::ExplicitStrategy);
    assert_eq!(report.strategy, EvaluationStrategy::BinaryJoin);
    assert_eq!(report.selected, EvaluationStrategy::BinaryJoin);
    assert!(report.downgrades.is_empty());
    // EXPLAIN still shows the widths the override renounced.
    assert_eq!(report.fhtw, Some(Rat::from_int(2)));
    assert_eq!(report.subw, Some(Rat::new(3, 2)));
}

#[test]
fn rule_2_acyclic_fast_path_picks_yannakakis_without_lps() {
    let query = parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap();
    let db = random_graph_db(&["R", "S"], 20, 80, 2);
    let report = Panda::new(query).plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::AcyclicFastPath);
    assert_eq!(report.reason, ReasonCode::AcyclicFreeConnex);
    assert_eq!(report.strategy, EvaluationStrategy::Yannakakis);
    assert_eq!(report.selected, EvaluationStrategy::Yannakakis);
    assert!(report.downgrades.is_empty());
    assert_eq!(report.branch_count, 1);
}

#[test]
fn rule_3_subw_gap_picks_the_adaptive_plan() {
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let report =
        Panda::new(query.clone()).with_statistics(gap_stats(&query)).plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::SubwGap);
    assert_eq!(report.reason, ReasonCode::SubwBelowFhtw);
    assert_eq!(report.strategy, EvaluationStrategy::Adaptive);
    assert!(report.downgrades.is_empty());
    assert_eq!(report.fhtw, Some(Rat::from_int(2)));
    assert_eq!(report.subw, Some(Rat::new(3, 2)));
    // The gap rule's evidence: one certified bound per bag selector, each
    // at or below the submodular width, each verifying as a Shannon flow.
    assert!(!report.branch_bounds.is_empty());
    for bound in &report.branch_bounds {
        assert!(bound.log_bound <= Rat::new(3, 2));
        let flow = bound.certificate.as_ref().expect("gap-rule bounds are certified");
        flow.verify_identity().expect("certificate must verify");
    }
}

#[test]
fn rule_4_td_fallback_when_widths_show_no_gap() {
    // Acyclic but not free-connex: rule 2 passes, and the only free-connex
    // decomposition is trivial, so subw == fhtw and rule 4 fires.
    let query = parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
    let db = random_graph_db(&["R", "S"], 20, 80, 3);
    let report = Panda::new(query).plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::TdFallback);
    assert_eq!(report.reason, ReasonCode::NoWidthGap);
    assert_eq!(report.strategy, EvaluationStrategy::StaticTd);
    assert!(report.downgrades.is_empty());
    assert_eq!(report.fhtw, report.subw);
}

#[test]
fn rule_5_generic_default_when_no_width_exists() {
    // An empty statistics set leaves every width unbounded: no width rule
    // can fire and the selector lands on the generic worst-case join.
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(8);
    let report =
        Panda::new(query.clone()).with_statistics(StatisticsSet::new(2)).plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::GenericDefault);
    assert_eq!(report.reason, ReasonCode::WidthsUnavailable);
    assert_eq!(report.strategy, EvaluationStrategy::GenericJoin);
    assert!(report.downgrades.is_empty());
    assert_eq!(report.fhtw, None);
    assert_eq!(report.subw, None);
    // The plan still runs and is still correct.
    let got = Panda::new(query.clone()).with_statistics(StatisticsSet::new(2)).evaluate(&db);
    let want = Panda::new(query.clone()).evaluate_with(&db, EvaluationStrategy::GenericJoin);
    assert_eq!(canonical(&got, &query), canonical(&want, &query));
}

// ---------------------------------------------------------------------------
// One scenario per fail-soft downgrade edge.
// ---------------------------------------------------------------------------

/// Measures the sequential pivot cost of the budgeted planning chains on
/// the 4-cycle: `(pivots for fhtw alone, pivots for fhtw + subw)`.  The
/// budgets in the downgrade tests are calibrated from these measured
/// numbers instead of hard-coding pivot counts that would rot whenever the
/// solver changes.
fn measured_pivot_costs(query: &ConjunctiveQuery, stats: &StatisticsSet) -> (u64, u64) {
    let tds = TreeDecomposition::enumerate(query);
    let mut fhtw_budget = panda::entropy::PivotBudget::new(u64::MAX);
    panda::entropy::fhtw_with_tds_budgeted(query, &tds, stats, &mut fhtw_budget)
        .expect("unbudgeted fhtw must succeed");
    let mut total_budget = panda::entropy::PivotBudget::new(u64::MAX);
    panda::entropy::fhtw_with_tds_budgeted(query, &tds, stats, &mut total_budget)
        .expect("unbudgeted fhtw must succeed");
    panda::entropy::subw_with_tds_budgeted(query, &tds, stats, &mut total_budget)
        .expect("unbudgeted subw must succeed");
    (fhtw_budget.used(), total_budget.used())
}

#[test]
fn downgrade_lp_budget_exhausted_during_subw_falls_back_to_static_td() {
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    let (fhtw_pivots, total_pivots) = measured_pivot_costs(&query, &stats);
    assert!(
        total_pivots > fhtw_pivots + 1,
        "calibration: subw must cost more than one pivot (fhtw {fhtw_pivots}, total {total_pivots})"
    );
    // Enough budget to finish fhtw, one pivot short of starting subw in
    // earnest: the budget dies mid-subw and the selection falls back to the
    // best single-TD plan that fhtw already paid for.
    let budgets = Budgets::unlimited().with_lp_pivot_budget(fhtw_pivots + 1);
    let panda = Panda::new(query.clone()).with_statistics(stats.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::SubwGap);
    assert_eq!(report.reason, ReasonCode::LpBudgetExhausted);
    assert_eq!(report.selected, EvaluationStrategy::Adaptive);
    assert_eq!(report.strategy, EvaluationStrategy::StaticTd);
    assert_eq!(
        report.downgrades,
        vec![Downgrade {
            from: EvaluationStrategy::Adaptive,
            to: EvaluationStrategy::StaticTd,
            reason: ReasonCode::LpBudgetExhausted,
        }]
    );
    assert_eq!(report.fhtw, Some(Rat::from_int(2)));
    assert_eq!(report.subw, None, "subw never finished");
    assert_eq!(report.lp_pivots_used, Some(fhtw_pivots + 1), "the whole budget was consumed");
    // Static bag bounds are reported, but without spending the pivots the
    // budget already refused: no certificates.
    assert!(!report.branch_bounds.is_empty());
    for bound in &report.branch_bounds {
        assert!(bound.certificate.is_none());
    }
    // The downgraded plan returns the identical relation.
    let reference = Panda::new(query.clone()).with_statistics(stats.clone()).evaluate(&db);
    let got = panda.evaluate(&db);
    assert_eq!(canonical(&got, &query), canonical(&reference, &query));
}

#[test]
fn lp_budget_exhausted_during_fhtw_is_a_selection_not_a_downgrade() {
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    // One pivot is never enough for the first bag LP: the budget dies
    // before any width is known, so nothing richer was ever selected —
    // the generic default is a *selection* with a budget reason, and the
    // downgrade list stays empty (downgrades ⟺ selected ≠ executed).
    let budgets = Budgets::unlimited().with_lp_pivot_budget(1);
    let panda = Panda::new(query.clone()).with_statistics(stats.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::GenericDefault);
    assert_eq!(report.reason, ReasonCode::LpBudgetExhausted);
    assert_eq!(report.selected, EvaluationStrategy::GenericJoin);
    assert_eq!(report.strategy, EvaluationStrategy::GenericJoin);
    assert!(report.downgrades.is_empty());
    assert_eq!(report.fhtw, None);
    assert_eq!(report.lp_pivots_used, Some(1));
    let reference = Panda::new(query.clone()).with_statistics(stats).evaluate(&db);
    assert_eq!(canonical(&panda.evaluate(&db), &query), canonical(&reference, &query));
}

#[test]
fn within_budget_planning_is_identical_to_unbudgeted_planning() {
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    let (_, total_pivots) = measured_pivot_costs(&query, &stats);
    let unbudgeted =
        Panda::new(query.clone()).with_statistics(stats.clone()).plan_report(&db).unwrap();
    let budgeted = Panda::new(query.clone())
        .with_statistics(stats)
        .with_budgets(Budgets::unlimited().with_lp_pivot_budget(total_pivots))
        .plan_report(&db)
        .unwrap();
    // A budget that is never exhausted changes nothing but the usage
    // counter: same rule, same reason, same widths, same certificates.
    assert_eq!(budgeted.rule, unbudgeted.rule);
    assert_eq!(budgeted.reason, unbudgeted.reason);
    assert_eq!(budgeted.strategy, unbudgeted.strategy);
    assert_eq!(budgeted.downgrades, unbudgeted.downgrades);
    assert_eq!(budgeted.fhtw, unbudgeted.fhtw);
    assert_eq!(budgeted.subw, unbudgeted.subw);
    assert_eq!(budgeted.partitions, unbudgeted.partitions);
    assert_eq!(budgeted.branch_bounds, unbudgeted.branch_bounds);
    assert_eq!(budgeted.lp_pivots_used, Some(total_pivots));
    assert_eq!(unbudgeted.lp_pivots_used, None);
}

#[test]
fn downgrade_branch_budget_exceeded_falls_back_to_binary_join() {
    let query = panda::workloads::four_cycle_projected();
    // The double star has mixed degrees, so the adaptive plan fans out
    // into several branches; a branch budget of 1 cannot hold it.
    let db = panda::workloads::double_star_db(24);
    let stats = gap_stats(&query);
    let unbudgeted =
        Panda::new(query.clone()).with_statistics(stats.clone()).plan_report(&db).unwrap();
    assert!(unbudgeted.branch_count > 1, "calibration: the instance must fan out");
    let budgets = Budgets::unlimited().with_branch_budget(1);
    let panda = Panda::new(query.clone()).with_statistics(stats.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::SubwGap);
    assert_eq!(report.reason, ReasonCode::SubwBelowFhtw);
    assert_eq!(report.selected, EvaluationStrategy::Adaptive);
    assert_eq!(report.strategy, EvaluationStrategy::BinaryJoin);
    assert_eq!(
        report.downgrades,
        vec![Downgrade {
            from: EvaluationStrategy::Adaptive,
            to: EvaluationStrategy::BinaryJoin,
            reason: ReasonCode::BranchBudgetExceeded,
        }]
    );
    assert_eq!(report.branch_count, unbudgeted.branch_count, "the triggering count is reported");
    let reference = Panda::new(query.clone()).with_statistics(stats).evaluate(&db);
    assert_eq!(canonical(&panda.evaluate(&db), &query), canonical(&reference, &query));
}

#[test]
fn downgrade_memory_budget_exceeded_falls_back_to_binary_join() {
    // Static case: the no-gap query downgrades StaticTd → BinaryJoin.
    let query = parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
    let db = random_graph_db(&["R", "S"], 20, 80, 7);
    let budgets = Budgets::unlimited().with_memory_rows_budget(1);
    let panda = Panda::new(query.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.rule, SelectorRule::TdFallback);
    assert_eq!(report.selected, EvaluationStrategy::StaticTd);
    assert_eq!(report.strategy, EvaluationStrategy::BinaryJoin);
    assert_eq!(
        report.downgrades,
        vec![Downgrade {
            from: EvaluationStrategy::StaticTd,
            to: EvaluationStrategy::BinaryJoin,
            reason: ReasonCode::MemoryBudgetExceeded,
        }]
    );
    let reference = Panda::new(query.clone()).evaluate(&db);
    assert_eq!(canonical(&panda.evaluate(&db), &query), canonical(&reference, &query));

    // Adaptive case: the gap query downgrades Adaptive → BinaryJoin.
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    let panda = Panda::new(query.clone()).with_statistics(stats.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.selected, EvaluationStrategy::Adaptive);
    assert_eq!(report.strategy, EvaluationStrategy::BinaryJoin);
    assert_eq!(report.downgrades.len(), 1);
    assert_eq!(report.downgrades[0].reason, ReasonCode::MemoryBudgetExceeded);
    let reference = Panda::new(query.clone()).with_statistics(stats).evaluate(&db);
    assert_eq!(canonical(&panda.evaluate(&db), &query), canonical(&reference, &query));
}

#[test]
fn downgrades_chain_lp_budget_then_memory_budget() {
    // Both budgets bite: the LP budget dies mid-subw (Adaptive → StaticTd)
    // and the static plan's bags then blow the memory budget (StaticTd →
    // BinaryJoin).  The chain is recorded in application order and links up.
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(16);
    let stats = gap_stats(&query);
    let (fhtw_pivots, _) = measured_pivot_costs(&query, &stats);
    let budgets =
        Budgets::unlimited().with_lp_pivot_budget(fhtw_pivots + 1).with_memory_rows_budget(1);
    let panda = Panda::new(query.clone()).with_statistics(stats.clone()).with_budgets(budgets);
    let report = panda.plan_report(&db).unwrap();
    assert_eq!(report.selected, EvaluationStrategy::Adaptive);
    assert_eq!(report.strategy, EvaluationStrategy::BinaryJoin);
    assert_eq!(
        report.downgrades,
        vec![
            Downgrade {
                from: EvaluationStrategy::Adaptive,
                to: EvaluationStrategy::StaticTd,
                reason: ReasonCode::LpBudgetExhausted,
            },
            Downgrade {
                from: EvaluationStrategy::StaticTd,
                to: EvaluationStrategy::BinaryJoin,
                reason: ReasonCode::MemoryBudgetExceeded,
            },
        ]
    );
    let reference = Panda::new(query.clone()).with_statistics(stats).evaluate(&db);
    assert_eq!(canonical(&panda.evaluate(&db), &query), canonical(&reference, &query));
}

// ---------------------------------------------------------------------------
// Explicit strategies never downgrade: budgets surface as structured errors.
// ---------------------------------------------------------------------------

#[test]
fn explicit_strategies_surface_budget_errors_instead_of_downgrading() {
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(8);
    let budgets = Budgets::unlimited().with_lp_pivot_budget(1);
    let panda = Panda::new(query).with_budgets(budgets);
    for strategy in [EvaluationStrategy::StaticTd, EvaluationStrategy::Adaptive] {
        let err = panda
            .try_evaluate_with(&db, strategy)
            .expect_err("one pivot cannot plan a width-based strategy");
        assert_eq!(
            err,
            StrategyError::BudgetExceeded { strategy, reason: ReasonCode::LpBudgetExhausted }
        );
    }
    // Strategies that plan without LPs are untouched by the pivot budget.
    for strategy in [EvaluationStrategy::GenericJoin, EvaluationStrategy::BinaryJoin] {
        assert!(panda.try_evaluate_with(&db, strategy).is_ok(), "{strategy:?}");
    }
}

#[test]
fn explicit_strategies_surface_unavailable_tds_instead_of_substituting() {
    // Empty statistics leave every width unbounded: an explicit StaticTd
    // or Adaptive request has no decomposition to run and must say so
    // rather than silently running some other plan.
    let query = panda::workloads::four_cycle_projected();
    let db = panda::workloads::double_star_db(8);
    let panda = Panda::new(query).with_statistics(StatisticsSet::new(2));
    for strategy in [EvaluationStrategy::StaticTd, EvaluationStrategy::Adaptive] {
        let err = panda.try_evaluate_with(&db, strategy).expect_err("no width exists");
        assert!(
            matches!(err, StrategyError::TdUnavailable { strategy: s, .. } if s == strategy),
            "unexpected error for {strategy:?}: {err}"
        );
    }
}

#[test]
fn strategy_error_display_is_stable_for_every_variant() {
    let cyclic = StrategyError::CyclicYannakakis;
    assert_eq!(cyclic.to_string(), "Yannakakis requires an acyclic query");

    let unavailable = StrategyError::TdUnavailable {
        strategy: EvaluationStrategy::StaticTd,
        source: panda::entropy::BoundError::Unbounded,
    };
    let text = unavailable.to_string();
    assert!(
        text.contains("no tree decomposition could be costed for static-td"),
        "unexpected Display: {text}"
    );

    let exceeded = StrategyError::BudgetExceeded {
        strategy: EvaluationStrategy::Adaptive,
        reason: ReasonCode::LpBudgetExhausted,
    };
    let text = exceeded.to_string();
    assert!(
        text.contains("budget exceeded (lp_budget_exhausted) while planning adaptive"),
        "unexpected Display: {text}"
    );
}

// ---------------------------------------------------------------------------
// Property-based coverage.
// ---------------------------------------------------------------------------

/// The query pool the properties draw from: free-connex acyclic, acyclic
/// non-free-connex, and two cyclic queries.
fn query_pool(idx: usize) -> ConjunctiveQuery {
    match idx % 4 {
        0 => parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap(),
        1 => parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap(),
        2 => panda::workloads::triangle_query(),
        _ => panda::workloads::four_cycle_projected(),
    }
}

fn ladder_rank(strategy: EvaluationStrategy) -> Option<u8> {
    match strategy {
        EvaluationStrategy::Adaptive => Some(2),
        EvaluationStrategy::StaticTd => Some(1),
        EvaluationStrategy::BinaryJoin => Some(0),
        _ => None,
    }
}

/// The report invariants every selection must satisfy, whatever fired.
fn check_report_invariants(report: &PlanReport, budgets: Budgets) {
    // Auto never reports the explicit-override rule.
    assert_ne!(report.rule, SelectorRule::ExplicitOverride);
    // Downgrades are recorded iff selected and executed differ, and the
    // chain links selected to executed without gaps.
    assert_eq!(report.selected != report.strategy, !report.downgrades.is_empty());
    if let (Some(first), Some(last)) = (report.downgrades.first(), report.downgrades.last()) {
        assert_eq!(first.from, report.selected);
        assert_eq!(last.to, report.strategy);
    }
    for pair in report.downgrades.windows(2) {
        assert_eq!(pair[0].to, pair[1].from);
    }
    // Downgrades only move down the ladder, and each one names a budget
    // that is actually configured.
    for d in &report.downgrades {
        let from = ladder_rank(d.from).expect("downgrade source is on the ladder");
        let to = ladder_rank(d.to).expect("downgrade target is on the ladder");
        assert!(from > to, "downgrades are one-way: {:?}", d);
        let configured = match d.reason {
            ReasonCode::LpBudgetExhausted => budgets.lp_pivot_budget.is_some(),
            ReasonCode::BranchBudgetExceeded => budgets.branch_budget.is_some(),
            ReasonCode::MemoryBudgetExceeded => budgets.memory_rows_budget.is_some(),
            _ => false,
        };
        assert!(configured, "downgrade reason {:?} without a matching budget", d.reason);
    }
    // Rule/reason/strategy consistency.
    match report.rule {
        SelectorRule::ExplicitOverride => unreachable!("checked above"),
        SelectorRule::AcyclicFastPath => {
            assert_eq!(report.reason, ReasonCode::AcyclicFreeConnex);
            assert_eq!(report.selected, EvaluationStrategy::Yannakakis);
        }
        SelectorRule::SubwGap => {
            assert_eq!(report.selected, EvaluationStrategy::Adaptive);
            match report.reason {
                ReasonCode::SubwBelowFhtw => {
                    let (Some(subw), Some(fhtw)) = (report.subw, report.fhtw) else {
                        panic!("gap rule without widths")
                    };
                    assert!(subw < fhtw);
                }
                ReasonCode::LpBudgetExhausted => assert_eq!(report.subw, None),
                other => panic!("impossible gap-rule reason {other:?}"),
            }
        }
        SelectorRule::TdFallback => {
            assert_eq!(report.selected, EvaluationStrategy::StaticTd);
            if report.reason == ReasonCode::NoWidthGap {
                assert_eq!(report.subw, report.fhtw);
            }
        }
        SelectorRule::GenericDefault => {
            assert_eq!(report.selected, EvaluationStrategy::GenericJoin);
            assert!(matches!(
                report.reason,
                ReasonCode::WidthsUnavailable | ReasonCode::LpBudgetExhausted
            ));
            assert_eq!(report.fhtw, None);
        }
    }
    // Budget accounting: pivots are only reported when a pivot budget was
    // set, and never exceed it.
    match (budgets.lp_pivot_budget, report.lp_pivots_used) {
        (None, used) => assert_eq!(used, None),
        (Some(limit), Some(used)) => assert!(used <= limit),
        // The acyclic fast path never opens the budget.
        (Some(_), None) => assert_eq!(report.rule, SelectorRule::AcyclicFastPath),
    }
    // An adaptive plan that survived the branch budget fits inside it.
    if report.strategy == EvaluationStrategy::Adaptive {
        if let Some(cap) = budgets.branch_budget {
            assert!(report.branch_count <= cap);
        }
    }
    assert!(report.branch_count >= 1);
}

proptest! {
    // Every selection's reason codes are consistent with its inputs, for
    // random data and every budget combination.
    #[test]
    fn prop_reason_codes_are_consistent_with_inputs(
        qidx in 0usize..4,
        edges in proptest::collection::vec((0u64..10, 0u64..10), 1..80),
        seed in 0u64..1000,
        lp_budget in proptest::option::of(1u64..2000),
        branch_budget in proptest::option::of(1usize..8),
        memory_budget in proptest::option::of(1u64..500),
    ) {
        let query = query_pool(qidx);
        let db = random_graph_db(&["R", "S", "T", "U"], 10, edges.len(), seed);
        let budgets = Budgets {
            lp_pivot_budget: lp_budget,
            branch_budget,
            memory_rows_budget: memory_budget,
        };
        let report = Panda::new(query).with_budgets(budgets).plan_report(&db).unwrap();
        check_report_invariants(&report, budgets);
    }

    // Bit-identity under downgrades: whatever the budgets force, the
    // answer relation is identical to the unbudgeted reference, under both
    // engines.
    #[test]
    fn prop_downgraded_plans_return_identical_results(
        qidx in 0usize..4,
        n in 4u64..12,
        edges in 10usize..80,
        seed in 0u64..1000,
        lp_budget in proptest::option::of(1u64..2000),
        branch_budget in proptest::option::of(1usize..8),
        memory_budget in proptest::option::of(1u64..500),
    ) {
        let query = query_pool(qidx);
        let db = random_graph_db(&["R", "S", "T", "U"], n, edges, seed);
        let budgets = Budgets {
            lp_pivot_budget: lp_budget,
            branch_budget,
            memory_rows_budget: memory_budget,
        };
        let reference = Panda::new(query.clone())
            .with_engine(Engine::Sequential)
            .evaluate(&db);
        let reference = canonical(&reference, &query);
        for engine in [Engine::Sequential, Engine::Parallel(Parallelism::threads(4))] {
            let got = Panda::new(query.clone())
                .with_engine(engine)
                .with_budgets(budgets)
                .evaluate(&db);
            prop_assert_eq!(canonical(&got, &query), reference.clone());
        }
    }

    // The facade differential property: every strategy that accepts the
    // query returns the identical relation.
    #[test]
    fn prop_all_accepting_strategies_agree(
        qidx in 0usize..4,
        n in 4u64..12,
        edges in 10usize..80,
        seed in 0u64..1000,
    ) {
        let query = query_pool(qidx);
        let db = random_graph_db(&["R", "S", "T", "U"], n, edges, seed);
        let panda = Panda::new(query.clone()).with_engine(Engine::Sequential);
        let reference =
            canonical(&panda.evaluate_with(&db, EvaluationStrategy::GenericJoin), &query);
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::Yannakakis,
            EvaluationStrategy::StaticTd,
            EvaluationStrategy::Adaptive,
            EvaluationStrategy::BinaryJoin,
        ] {
            match panda.try_evaluate_with(&db, strategy) {
                Ok(result) => prop_assert_eq!(
                    canonical(&result, &query),
                    reference.clone(),
                    "strategy {:?}",
                    strategy
                ),
                Err(StrategyError::CyclicYannakakis) => {
                    prop_assert_eq!(strategy, EvaluationStrategy::Yannakakis);
                    prop_assert!(!panda.is_free_connex_acyclic());
                }
                Err(other) => {
                    panic!("strategy {strategy:?} rejected an unbudgeted query: {other}")
                }
            }
        }
    }
}
