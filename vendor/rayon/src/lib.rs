//! A minimal, dependency-free, offline stand-in for the parts of the
//! [`rayon` 1.10](https://docs.rs/rayon/1.10) API that this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves its `rayon = "1.10"` dependency to this vendored shim.  It
//! provides:
//!
//! * [`join`] — potentially-parallel two-way fork/join,
//! * [`scope`] and [`Scope::spawn`] — structured task spawning,
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `num_threads` configuration
//!   and [`ThreadPool::install`],
//! * [`prelude`] — `par_iter()` / `into_par_iter()` on slices, `Vec`s and
//!   `usize` ranges with [`ParallelIterator::map`],
//!   [`ParallelIterator::for_each`] and [`ParallelIterator::collect`].
//!
//! # How it differs from the real crate
//!
//! There is **no work-stealing deque and no persistent worker pool**: every
//! parallel operation spawns plain [`std::thread::scope`] threads, bounded
//! by a per-thread *budget* that mirrors rayon's `current_num_threads`.
//! [`ThreadPool::install`] runs its closure on the calling thread with the
//! pool's thread budget set, rather than moving it to a pool thread.  Tasks
//! spawned by [`join`] split the caller's budget between the two sides and
//! tasks spawned by parallel iterators or [`Scope::spawn`] run with a
//! budget of 1, so the total number of live threads never exceeds the
//! configured budget and accidental nested-parallelism blow-up is
//! impossible.  This favours the coarse-grained, few-hundred-microsecond
//! tasks this workspace parallelises (query branches, LP chains, probe
//! shards); it would be a poor fit for fine-grained recursive workloads,
//! which is exactly what the real crate's work stealing is for.
//!
//! Ordering is deterministic: [`ParallelIterator::collect`] splits the
//! input into contiguous chunks and concatenates the chunk results in
//! input order, so a `par_iter().map(f).collect::<Vec<_>>()` equals its
//! sequential counterpart element for element (the real crate makes the
//! same guarantee for indexed parallel iterators).
//!
//! Only the surface actually exercised by the workspace is implemented;
//! anything else is intentionally absent so accidental reliance on
//! unvendored behaviour fails loudly at compile time.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
};

thread_local! {
    /// The calling thread's parallelism budget; `None` means "not inside
    /// any pool", which resolves to the machine's available parallelism.
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads the current context may use, mirroring
/// `rayon::current_num_threads`: the installed pool's budget, or the
/// machine's available parallelism outside any pool.
#[must_use]
pub fn current_num_threads() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(default_num_threads)
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the thread-local budget set to `n`, restoring the
/// previous budget afterwards (also on panic).
fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(BUDGET.with(|b| b.replace(Some(n.max(1)))));
    f()
}

/// Joins the results of the panicking side(s) of a two-way fork,
/// propagating the payload like the real crate.
fn propagate<T>(result: std::thread::Result<T>) -> T {
    match result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results — mirroring `rayon::join`.
///
/// With a budget of one thread the two closures run sequentially on the
/// caller; otherwise `oper_b` runs on a freshly spawned scoped thread with
/// half the budget while the caller runs `oper_a` with the other half.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let n = current_num_threads();
    if n < 2 {
        return (oper_a(), oper_b());
    }
    let (budget_a, budget_b) = (n - n / 2, n / 2);
    std::thread::scope(|s| {
        let handle_b = s.spawn(move || with_budget(budget_b, oper_b));
        let ra = with_budget(budget_a, oper_a);
        (ra, propagate(handle_b.join()))
    })
}

/// A scope for structured task spawning, mirroring `rayon::Scope`.
///
/// Unlike the real crate this scope carries two lifetimes (it wraps
/// [`std::thread::scope`]); closure-based callers (`|s| s.spawn(|_| …)`)
/// are source-compatible.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope.  The task runs on its own scoped
    /// thread with a parallelism budget of 1 (see the crate docs) and may
    /// itself spawn further tasks through the scope handle it receives.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let nested = Scope { inner };
            with_budget(1, || body(&nested));
        });
    }
}

/// Creates a scope in which tasks can be spawned, waiting for all of them
/// before returning — mirroring `rayon::scope`.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// Error returned by [`ThreadPoolBuilder::build`]; in this shim pool
/// construction is infallible, the type exists for API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error (unreachable in the vendored shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of threads; `0` (the default) means the machine's
    /// available parallelism, like the real crate.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  Infallible in the shim (no OS threads are spawned
    /// until work is submitted), but kept fallible for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_num_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n.max(1) })
    }
}

/// A thread-count budget posing as a thread pool, mirroring
/// `rayon::ThreadPool`.  See the crate docs for how the shim schedules
/// work.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The number of threads in the pool.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread budget installed, so that
    /// [`join`], [`scope`] and parallel iterators called inside use up to
    /// `num_threads` threads.  Runs on the calling thread (the real crate
    /// moves `op` to a pool thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        with_budget(self.num_threads, op)
    }

    /// [`join`] under this pool's budget.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(oper_a, oper_b))
    }
}

/// Parallel iterators over slices, `Vec`s and ranges.
pub mod iter {
    use super::{current_num_threads, propagate, with_budget, Arc};

    /// A parallel iterator, mirroring `rayon::iter::ParallelIterator`.
    ///
    /// The three `#[doc(hidden)]` items are the shim's internal driver
    /// surface (length, contiguous splitting, sequential chunk
    /// evaluation); user code only calls the adaptor methods.
    pub trait ParallelIterator: Sized + Send {
        /// The item type produced.
        type Item: Send;

        /// The number of items this iterator will produce.
        #[doc(hidden)]
        fn par_len(&self) -> usize;

        /// Splits into at most `k` contiguous, in-order chunks.
        #[doc(hidden)]
        fn split_into(self, k: usize) -> Vec<Self>;

        /// Evaluates this (chunk) iterator sequentially.
        #[doc(hidden)]
        fn collect_chunk(self) -> Vec<Self::Item>;

        /// Maps each item through `f`, mirroring `ParallelIterator::map`.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f: Arc::new(f) }
        }

        /// Applies `f` to every item, mirroring
        /// `ParallelIterator::for_each`.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            drop(drive(self.map(f)));
        }

        /// Collects the items, mirroring `ParallelIterator::collect`.
        /// Chunk results are concatenated in input order, so collecting
        /// into a `Vec` is element-for-element identical to the sequential
        /// iterator.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_chunks(drive(self))
        }
    }

    /// Evaluates a parallel iterator: splits it into one contiguous chunk
    /// per available thread, evaluates the chunks on scoped threads (the
    /// caller takes the first chunk), and returns the per-chunk results in
    /// input order.
    fn drive<I: ParallelIterator>(iter: I) -> Vec<Vec<I::Item>> {
        let budget = current_num_threads();
        let k = budget.min(iter.par_len()).max(1);
        if k <= 1 {
            return vec![iter.collect_chunk()];
        }
        let mut chunks = iter.split_into(k).into_iter();
        let first = chunks.next().expect("split_into returns at least one chunk");
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .map(|chunk| s.spawn(move || with_budget(1, || chunk.collect_chunk())))
                .collect();
            let mut out = Vec::with_capacity(handles.len() + 1);
            out.push(with_budget(1, || first.collect_chunk()));
            out.extend(handles.into_iter().map(|h| propagate(h.join())));
            out
        })
    }

    /// The boundaries that split `len` items into `k` balanced contiguous
    /// chunks: chunk `i` covers `[len * i / k, len * (i + 1) / k)`.
    fn chunk_bounds(len: usize, k: usize) -> impl Iterator<Item = (usize, usize)> {
        let k = k.max(1);
        (0..k).map(move |i| (len * i / k, len * (i + 1) / k))
    }

    /// Conversion into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The item type produced.
        type Item: Send;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `par_iter()` on references, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// The item type produced (a reference).
        type Item: Send + 'data;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoParallelIterator,
    {
        type Iter = <&'data C as IntoParallelIterator>::Iter;
        type Item = <&'data C as IntoParallelIterator>::Item;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    /// Collecting from a parallel iterator, mirroring
    /// `rayon::iter::FromParallelIterator`.
    pub trait FromParallelIterator<T: Send> {
        /// Builds `Self` from per-chunk results in input order.
        #[doc(hidden)]
        fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self {
            let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
            for chunk in chunks {
                out.extend(chunk);
            }
            out
        }
    }

    /// Parallel iterator over a slice (`slice.par_iter()`).
    #[derive(Debug)]
    pub struct Iter<'data, T: Sync> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
        type Item = &'data T;

        fn par_len(&self) -> usize {
            self.slice.len()
        }

        fn split_into(self, k: usize) -> Vec<Self> {
            chunk_bounds(self.slice.len(), k)
                .map(|(lo, hi)| Iter { slice: &self.slice[lo..hi] })
                .collect()
        }

        fn collect_chunk(self) -> Vec<Self::Item> {
            self.slice.iter().collect()
        }
    }

    impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
        type Iter = Iter<'data, T>;
        type Item = &'data T;

        fn into_par_iter(self) -> Self::Iter {
            Iter { slice: self }
        }
    }

    impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
        type Iter = Iter<'data, T>;
        type Item = &'data T;

        fn into_par_iter(self) -> Self::Iter {
            Iter { slice: self }
        }
    }

    /// Owning parallel iterator over a `Vec` (`vec.into_par_iter()`).
    #[derive(Debug)]
    pub struct IntoIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoIter<T> {
        type Item = T;

        fn par_len(&self) -> usize {
            self.items.len()
        }

        fn split_into(mut self, k: usize) -> Vec<Self> {
            let bounds: Vec<(usize, usize)> = chunk_bounds(self.items.len(), k).collect();
            let mut parts = Vec::with_capacity(bounds.len());
            // Split from the back so each split_off is O(moved items).
            for &(lo, _) in bounds.iter().rev() {
                parts.push(IntoIter { items: self.items.split_off(lo) });
            }
            parts.reverse();
            parts
        }

        fn collect_chunk(self) -> Vec<Self::Item> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            IntoIter { items: self }
        }
    }

    /// Parallel iterator over a `usize` range (`(0..n).into_par_iter()`).
    #[derive(Debug)]
    pub struct RangeIter {
        range: std::ops::Range<usize>,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;

        fn par_len(&self) -> usize {
            self.range.len()
        }

        fn split_into(self, k: usize) -> Vec<Self> {
            let base = self.range.start;
            chunk_bounds(self.range.len(), k)
                .map(|(lo, hi)| RangeIter { range: base + lo..base + hi })
                .collect()
        }

        fn collect_chunk(self) -> Vec<Self::Item> {
            self.range.collect()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = RangeIter;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            RangeIter { range: self }
        }
    }

    /// A mapped parallel iterator (the return type of
    /// [`ParallelIterator::map`]).
    pub struct Map<I, F> {
        base: I,
        f: Arc<F>,
    }

    impl<I, F, R> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn par_len(&self) -> usize {
            self.base.par_len()
        }

        fn split_into(self, k: usize) -> Vec<Self> {
            let f = self.f;
            self.base
                .split_into(k)
                .into_iter()
                .map(|chunk| Map { base: chunk, f: Arc::clone(&f) })
                .collect()
        }

        fn collect_chunk(self) -> Vec<Self::Item> {
            let f = self.f;
            self.base.collect_chunk().into_iter().map(|item| f(item)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_is_sequential_under_a_budget_of_one() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let outer = std::thread::current().id();
        let (ta, tb) = pool.join(|| std::thread::current().id(), || std::thread::current().id());
        assert_eq!(ta, outer);
        assert_eq!(tb, outer);
    }

    #[test]
    fn install_sets_the_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        // Restored outside.
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn par_iter_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 5, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 3).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn into_par_iter_moves_items_in_order() {
        let input: Vec<String> = (0..37).map(|i| i.to_string()).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<String> = pool.install(|| input.clone().into_par_iter().collect());
        assert_eq!(got, input);
    }

    #[test]
    fn range_par_iter_covers_the_range() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (10..30).into_par_iter().map(|i| i * i).collect());
        let expected: Vec<usize> = (10..30).map(|i| i * i).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn for_each_visits_every_item() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..128).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            items.par_iter().for_each(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn scope_spawns_run_to_completion() {
        let done = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..5 {
                s.spawn(|_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn nested_parallelism_degrades_to_sequential_in_workers() {
        // Workers run with budget 1, so a nested par_iter inside a worker
        // must not spawn further threads (observable via the budget).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let budgets: Vec<usize> =
            pool.install(|| (0..4).into_par_iter().map(|_| current_num_threads()).collect());
        // The caller-run chunk and the spawned chunks all see budget 1.
        assert!(budgets.iter().all(|&b| b == 1), "worker budgets: {budgets:?}");
    }

    #[test]
    fn empty_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let got: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(got.is_empty());
        let got: Vec<usize> = (0..0).into_par_iter().collect();
        assert!(got.is_empty());
    }

    #[test]
    fn builder_zero_threads_means_available_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
