//! A minimal, dependency-free, offline stand-in for the parts of the
//! [`rand` 0.8](https://docs.rs/rand/0.8) API that this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves its `rand = "0.8"` dependency to this vendored shim.  It
//! provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64, matching the `SeedableRng::seed_from_u64` contract of the
//!   real crate (same seed ⇒ same stream across runs and platforms; the
//!   stream itself differs from upstream `rand`, which is fine because the
//!   workspace only relies on determinism, never on specific values),
//! * the [`Rng`] and [`SeedableRng`] traits with `gen`, `gen_range` and
//!   `gen_bool`,
//! * [`distributions::Standard`] as the sampling bound behind `Rng::gen`.
//!
//! Only the surface actually exercised by the workspace is implemented;
//! anything else is intentionally absent so accidental reliance on
//! unvendored behaviour fails loudly at compile time.

use std::ops::Range;

/// Trait for seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.  Deterministic: the same
    /// seed always produces the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled from the [`distributions::Standard`]
/// distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like upstream rand.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening multiply maps 64 random bits onto the span with
                // negligible bias for the small spans used in tests.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The wrapped difference must go through the same-width
                // unsigned twin: widening a negative difference directly
                // to u128 would sign-extend and inflate the span.
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $u;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i64 => u64, i32 => u32, isize => usize);

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (and used by upstream rand for seed_from_u64).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution types, mirroring `rand::distributions`.
pub mod distributions {
    /// The standard distribution (marker; sampling goes through
    /// [`crate::StandardSample`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(0..6u64);
            assert!(v < 6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        for _ in 0..200 {
            let v = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn gen_range_full_width_signed_spans() {
        // Spans wider than the signed max must not sign-extend: the
        // wrapped difference goes through the unsigned twin.
        let mut rng = StdRng::seed_from_u64(5);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..200 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            neg |= v < 0;
            pos |= v >= 0;
        }
        assert!(neg && pos, "both halves of the i32 range reachable");
        for _ in 0..200 {
            let v = rng.gen_range(i64::MIN..0);
            assert!(v < 0);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((300..500).contains(&hits), "hits {hits}");
    }
}
