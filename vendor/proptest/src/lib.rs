//! A minimal, dependency-free, offline stand-in for the parts of the
//! [`proptest` 1.x](https://docs.rs/proptest/1) API used by the workspace
//! property tests.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves its `proptest = "1"` dependency to this vendored shim.  It
//! supports exactly the surface the tests use:
//!
//! * the [`proptest!`] macro (multiple `#[test] fn name(arg in strategy)`
//!   items per invocation),
//! * range strategies (`0u64..15`, `-1000i128..1000`, `1usize..6`, ...),
//!   tuple strategies, [`collection::vec`], [`option::of`], and
//!   [`Strategy::prop_map`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs printed, but is not minimised), and a fixed
//! deterministic seed per test function (override the case count with the
//! `PROPTEST_CASES` environment variable).

use std::ops::Range;

pub use strategy::Strategy;

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from an element strategy,
    /// with a length drawn uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating vectors whose elements come from
    /// `element` and whose lengths lie in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_usize(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The result of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Creates a strategy producing `None` for about a quarter of the
    /// cases and `Some(value)` from `inner` otherwise (upstream's default
    /// `None` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_usize(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The strategy abstraction: a recipe for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Range;

    /// A recipe for generating values of an associated type, mirroring
    /// `proptest::strategy::Strategy` (without shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring `prop_map`.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    rng.$via(self.start as i128, self.end as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => gen_i128,
        u16 => gen_i128,
        u32 => gen_i128,
        u64 => gen_i128,
        usize => gen_i128,
        i8 => gen_i128,
        i16 => gen_i128,
        i32 => gen_i128,
        i64 => gen_i128,
        isize => gen_i128,
        i128 => gen_i128,
    );

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// The deterministic runner behind [`proptest!`].
pub mod test_runner {
    /// Number of cases per property, read from `PROPTEST_CASES` (default
    /// 64).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// A deterministic xoshiro256** generator; seeded from the test name
    /// so every property has a reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator deterministically seeded from `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `i128` in `[lo, hi)`; covers every integer width the
        /// strategies support (all fit in `i128`).
        pub fn gen_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "cannot sample empty range");
            // Wrapping arithmetic throughout: for ranges wider than
            // i128::MAX the plain difference (and the final addition)
            // would overflow, but mod-2^128 arithmetic still lands the
            // result exactly in [lo, hi).
            let span = hi.wrapping_sub(lo) as u128;
            let r = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            lo.wrapping_add((r % span) as i128)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.gen_i128(lo as i128, hi as i128) as usize
        }
    }
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when an assumption fails, mirroring
/// `prop_assume!`.  Only valid inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each declared function runs [`test_runner::cases`] cases with inputs
/// drawn from the given strategies.  Failures panic with the generated
/// inputs included in the message (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..$crate::test_runner::cases() {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ()> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match result {
                    // Ok(Ok(())) — case passed; Ok(Err(())) — prop_assume
                    // rejected the case; Err — an assertion failed.
                    ::std::result::Result::Ok(_) => {}
                    ::std::result::Result::Err(payload) => {
                        let msg = payload
                            .downcast_ref::<::std::string::String>()
                            .map(::std::string::String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property {} failed at case {} with inputs {:?}: {}",
                            stringify!($name),
                            case,
                            ($(&$arg,)+),
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(-5i128..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn ranges_wider_than_i128_max_do_not_overflow() {
        let mut rng = TestRng::deterministic("ranges_wider_than_i128_max");
        let (mut neg, mut pos) = (false, false);
        for _ in 0..200 {
            let v = Strategy::generate(&(i128::MIN..i128::MAX), &mut rng);
            assert!(v < i128::MAX);
            neg |= v < 0;
            pos |= v >= 0;
        }
        assert!(neg && pos, "both halves of the i128 range reachable");
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_length");
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec((0u64..4, 0u64..4), 1..7), &mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|(a, b)| *a < 4 && *b < 4));
        }
    }

    #[test]
    fn option_strategy_generates_both_variants_in_range() {
        let mut rng = TestRng::deterministic("option_strategy_generates_both_variants");
        let s = crate::option::of(3u64..9);
        let (mut none, mut some) = (false, false);
        for _ in 0..200 {
            match Strategy::generate(&s, &mut rng) {
                None => none = true,
                Some(v) => {
                    assert!((3..9).contains(&v));
                    some = true;
                }
            }
        }
        assert!(none && some, "both variants must be reachable");
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("prop_map_applies");
        let s = (0i128..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert_eq!(v % 2, 0);
            assert!((0..20).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    // Exercises the macro's failure reporting: the generated test must
    // panic with the failing case's inputs in the message.  The
    // `#[should_panic]` expectation rides through the macro's attribute
    // passthrough onto the generated `#[test]` fn, so the test can live
    // at module level like any other — no nested-test-item allowance.
    proptest! {
        #[test]
        #[should_panic(expected = "property macro_failure failed at case")]
        fn macro_failure(a in 5u32..6) {
            prop_assert!(a < 5, "a was {}", a);
        }
    }
}
