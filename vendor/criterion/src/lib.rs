//! A minimal, dependency-free, offline stand-in for the parts of the
//! [`criterion` 0.5](https://docs.rs/criterion/0.5) API used by the
//! workspace benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves its `criterion = "0.5"` dependency to this vendored shim.
//! Benches compile unchanged (`cargo bench --no-run`) and `cargo bench`
//! runs them with a simple median-of-samples harness that prints one line
//! per benchmark.  Statistical analysis, plots and baselines of the real
//! crate are intentionally out of scope; swap the shim for the real crate
//! once the environment has registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque blackbox to avoid the optimiser deleting a benchmarked value.
///
/// Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// No-op summary hook for API parity with `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// A benchmark identifier `function/parameter`, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a displayed parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration setup, mirroring
    /// `Bencher::iter_batched` with small batches.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizes for `iter_batched`, mirroring `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// A small number of iterations per batch.
    SmallInput,
    /// A large number of iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: one calibration pass to estimate per-iteration cost.
    let mut calib = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    f(&mut calib);
    let mut per_iter = calib.elapsed.max(Duration::from_nanos(1));
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut calib);
        per_iter = (per_iter + calib.elapsed.max(Duration::from_nanos(1))) / 2;
    }

    // Pick an iteration count so all samples fit in measurement_time.
    let budget = config.measurement_time.as_nanos().max(1) / config.sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed / iters.max(1) as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        samples.len(),
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        let input = vec![1u64, 2, 3];
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, inp| {
            b.iter(|| {
                total = inp.iter().sum();
                total
            });
        });
        group.finish();
        assert_eq!(total, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
